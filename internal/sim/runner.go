package sim

import (
	"context"
	"errors"
	stdruntime "runtime"
	"sync"
	"sync/atomic"
	"time"

	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/events"
	"adhocconsensus/internal/model"
	"adhocconsensus/internal/telemetry"
)

// Result is the digested outcome of one trial: everything the experiment
// tables and sweep aggregations read, without retaining the execution
// trace. Fields derive deterministically from the trial alone, so a Result
// slice is byte-identical regardless of how many workers produced it.
type Result struct {
	// Index is the trial's position in the executed scenario slice.
	Index int
	// Name echoes the scenario's Name.
	Name string
	// Seed echoes the scenario's seed.
	Seed int64

	// Rounds is the number of rounds executed.
	Rounds int
	// AllDecided reports whether every non-crashed process decided.
	AllDecided bool
	// Decisions is the number of processes that decided.
	Decisions int
	// DecidedValues is the sorted set of distinct decided values.
	DecidedValues []model.Value
	// LastDecisionRound is the latest round at which any process decided
	// (0 if none).
	LastDecisionRound int

	// AgreementOK, ValidityOK (strong validity), and TerminationOK report
	// the consensus property checks; TerminationOK exempts processes the
	// scenario's crash schedule names.
	AgreementOK   bool
	ValidityOK    bool
	TerminationOK bool

	// Err records a configuration or execution error; all other fields are
	// zero when it is set.
	Err error
}

// ConsensusOK reports whether the trial satisfied agreement, strong
// validity, and termination.
func (r Result) ConsensusOK() bool {
	return r.AgreementOK && r.ValidityOK && r.TerminationOK
}

// RunTrial executes one scenario and digests its outcome, discarding the
// underlying execution.
func RunTrial(index int, s Scenario) Result {
	r, _ := RunTrialFull(index, s)
	return r
}

// RunTrialFull executes one scenario and returns both the digested outcome
// and the underlying engine result — with whatever trace the scenario's
// mode recorded. The forensic replay path uses it to audit a fresh
// TraceFull execution against a recorded digest produced by this same
// digest logic; the engine result is nil when the trial errored.
func RunTrialFull(index int, s Scenario) (Result, *engine.Result) {
	res, err := Run(s)
	if err != nil {
		return Result{Index: index, Name: s.Name, Seed: s.Seed, Err: err}, nil
	}
	return Result{
		Index:             index,
		Name:              s.Name,
		Seed:              s.Seed,
		Rounds:            res.Rounds,
		AllDecided:        res.AllDecided,
		Decisions:         len(res.Decisions),
		DecidedValues:     res.Execution.DecidedValues(),
		LastDecisionRound: res.Execution.LastDecisionRound(),
		AgreementOK:       engine.CheckAgreement(res) == nil,
		ValidityOK:        engine.CheckStrongValidity(res) == nil,
		TerminationOK:     engine.CheckTermination(res, s.Crashes) == nil,
	}, res
}

// ResultSink consumes digested trial results as a sweep produces them.
// Runner.SweepTo delivers results strictly in ascending index order and
// never calls Consume concurrently, so implementations need no locking.
// internal/sink provides the standard implementations (in-memory
// collection, buffered JSONL streaming, fan-out).
type ResultSink interface {
	Consume(r Result) error
}

// Runner executes independent trials on a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int

	// TrialTimeout, when positive, bounds each trial's wall-clock time. A
	// watchdog arms the scenario's Stop flag when the deadline passes; the
	// round loop notices at its next round boundary and the trial is
	// quarantined with a DeadlineError in Result.Err, exactly like any
	// other per-trial failure. The check costs one atomic load per round —
	// nothing on the per-delivery hot path — and only guards trials that
	// are engine runs (Map callers wrap their own work; see
	// experiments.RunWithDeadline for arbitrary functions).
	TrialTimeout time.Duration
}

// Map runs fn(0..n-1) across the pool and returns when all calls complete.
// fn must confine its effects to slot i of whatever it writes (the
// parallel-for contract); under that contract the combined output is
// independent of Workers. It is the generic entry point for trials that are
// not engine runs (lower-bound pipelines, multihop floods, substrates).
func (r Runner) Map(n int, fn func(i int)) {
	r.MapCtx(context.Background(), n, fn)
}

// MapCtx is Map with cooperative cancellation: once ctx is done, workers
// stop claiming new indices, calls already in flight run to completion (at
// most one per worker), and MapCtx returns ctx's error. A nil return means
// every one of the n calls completed. fn itself is never interrupted — the
// parallel-for contract still holds for every index that ran.
func (r Runner) MapCtx(ctx context.Context, n int, fn func(i int)) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	w := r.Workers
	if w <= 0 {
		w = stdruntime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	var completed atomic.Int64
	if w <= 1 {
		for i := 0; i < n; i++ {
			if ctx.Err() != nil {
				break
			}
			fn(i)
			completed.Add(1)
		}
	} else {
		var next atomic.Int64
		var wg sync.WaitGroup
		wg.Add(w)
		for k := 0; k < w; k++ {
			go func() {
				defer wg.Done()
				for ctx.Err() == nil {
					i := int(next.Add(1)) - 1
					if i >= n {
						return
					}
					fn(i)
					completed.Add(1)
				}
			}()
		}
		wg.Wait()
	}
	if int(completed.Load()) < n {
		return ctx.Err()
	}
	return nil
}

// Sweep executes every scenario and returns the digested results in
// scenario order. The first per-trial error (by index) is also returned;
// the result slice is complete either way.
func (r Runner) Sweep(scenarios []Scenario) ([]Result, error) {
	results := make([]Result, len(scenarios))
	err := r.SweepTo(scenarios, sliceSink(results))
	return results, err
}

// sliceSink is the in-memory sink behind Sweep: results land in their slot.
type sliceSink []Result

func (s sliceSink) Consume(r Result) error {
	s[r.Index] = r
	return nil
}

// SweepTo executes every scenario on the worker pool and streams the
// digested results into sink in strict scenario order, without accumulating
// them: the sweep's memory footprint is the reorder window (bounded by the
// worker count's out-of-orderness), not the grid size. The stream delivered
// to the sink is byte-identical for any worker count. Results whose trial
// errored — including trials that panicked or overran TrialTimeout; both
// are recovered into Result.Err — are delivered too and do not stop the
// sweep; a sink Consume error does — remaining trials are skipped and a
// *SinkError is returned. Otherwise SweepTo returns the first per-trial
// error by index (a *TrialError), after all trials complete.
func (r Runner) SweepTo(scenarios []Scenario, sink ResultSink) error {
	return r.SweepToCtx(context.Background(), scenarios, sink)
}

// SweepToCtx is SweepTo with cooperative cancellation. When ctx is done the
// sweep stops claiming trials, lets in-flight trials finish, delivers the
// contiguous prefix of completed results to the sink, and returns a
// *CanceledError wrapping ctx's error. The delivered prefix is exactly what
// an uninterrupted sweep would have produced for those indices, so a
// flushed JSONL shard remains valid for resume.
func (r Runner) SweepToCtx(ctx context.Context, scenarios []Scenario, sink ResultSink) error {
	return r.sweepTo(ctx, len(scenarios), func(i int) Result {
		return r.guardedTrial(i, scenarios[i])
	}, sink)
}

// SweepTrialsTo is SweepTo over an indexed shard (see ShardScenarios): each
// trial's Result carries its global sweep index, and delivery order is the
// trials slice order — ascending global index for shards built by
// ShardScenarios, so concatenating the k shard streams sorted by index
// reproduces the unsharded stream byte for byte.
func (r Runner) SweepTrialsTo(trials []Trial, sink ResultSink) error {
	return r.SweepTrialsToCtx(context.Background(), trials, sink)
}

// SweepTrialsToCtx is SweepTrialsTo with the cancellation semantics of
// SweepToCtx.
func (r Runner) SweepTrialsToCtx(ctx context.Context, trials []Trial, sink ResultSink) error {
	return r.sweepTo(ctx, len(trials), func(i int) Result {
		return r.guardedTrial(trials[i].Index, trials[i].Scenario)
	}, sink)
}

// guardedTrial runs one scenario with the sweep's crash isolation: a panic
// anywhere inside the trial — an automaton, detector, adversary, or the
// engine itself, on the trial goroutine or re-raised from a delivery shard
// worker — is recovered into Result.Err as an *engine.PanicError. The
// error's message excludes the captured stack (which lives on the struct
// for forensics) so quarantine records serialize identically at any worker
// count. With TrialTimeout set, a watchdog timer arms the scenario's Stop
// flag at the deadline and the resulting engine abort is rewritten to a
// deterministic *DeadlineError.
func (r Runner) guardedTrial(index int, s Scenario) (res Result) {
	defer func() {
		if v := recover(); v != nil {
			res = Result{Index: index, Name: s.Name, Seed: s.Seed, Err: engine.NewPanicError(v)}
		}
	}()
	if r.TrialTimeout <= 0 {
		return RunTrial(index, s)
	}
	stop := s.Stop
	if stop == nil {
		stop = new(atomic.Bool)
		s.Stop = stop
	}
	var expired atomic.Bool
	timer := time.AfterFunc(r.TrialTimeout, func() {
		expired.Store(true)
		stop.Store(true)
	})
	defer timer.Stop()
	res = RunTrial(index, s)
	if res.Err != nil && expired.Load() && errors.Is(res.Err, engine.ErrStopped) {
		res.Err = &DeadlineError{Timeout: r.TrialTimeout}
	}
	return res
}

// sweepTo runs fn(0..n-1) on the pool and hands each Result to the sink in
// ascending slot order. A mutex-guarded reorder window bridges out-of-order
// completion to the sink's strictly sequential contract; the sink is never
// called concurrently. A Consume error aborts the sweep: trials already in
// flight finish (at most one per worker), every other remaining trial is
// skipped, and a *SinkError is returned. Cancellation through ctx likewise
// drains in-flight trials and delivers the contiguous completed prefix,
// then returns a *CanceledError. Per-trial errors, by contrast, never stop
// the sweep — each trial is independent, and the caller gets the first one
// (by slot order, as a *TrialError) after all trials ran.
func (r Runner) sweepTo(ctx context.Context, n int, fn func(i int) Result, sink ResultSink) error {
	buf := make([]Result, n)
	done := make([]bool, n)
	var (
		aborted   atomic.Bool
		mu        sync.Mutex
		next      int
		delivered int   // records the sink accepted (= next unless Consume failed)
		firstErr  error // first per-trial Err, by slot order
		sinkErr   error // first Consume error; aborts the sweep
		rawErr    error // that Consume error, unwrapped of the SinkError envelope
	)
	// Telemetry is read once here; every metric call below is a nil-receiver
	// no-op when disabled. The reorder-window occupancy high-water mark is
	// tracked in locals under the existing mutex and published once after the
	// sweep, so the hot path pays no extra atomics.
	tm := telemetry.Sim()
	doneCount, maxOcc := 0, 0
	// The event journal is likewise read once. Emission is per-trial at the
	// very finest — quarantine points — and trial progress is rate-limited
	// into batch spans of jal.BatchEvery() delivered trials, so journal
	// volume stays bounded and the record hot path is untouched. Batch state
	// lives under the reorder mutex, where delivery is already serial.
	jal := events.Active()
	var (
		batchSpan  uint64
		batchFirst int64
		batchN     int64
	)
	ctxErr := r.MapCtx(ctx, n, func(i int) {
		if aborted.Load() {
			return
		}
		var start time.Time
		if tm.TrialWallNs != nil {
			start = time.Now()
		}
		res := fn(i)
		tm.Trials.Inc()
		if tm.TrialWallNs != nil {
			tm.TrialWallNs.Observe(uint64(time.Since(start)))
		}
		if res.Err == nil && res.AllDecided {
			tm.RoundsToDecide.Observe(uint64(res.LastDecisionRound))
		}
		mu.Lock()
		defer mu.Unlock()
		buf[i] = res
		done[i] = true
		doneCount++
		for next < n && done[next] {
			out := buf[next]
			buf[next] = Result{} // release the trial's memory once delivered
			if jal != nil {
				if batchSpan == 0 {
					batchFirst, batchN = int64(out.Index), 0
					batchSpan = jal.BeginBatch(batchFirst)
				}
				batchN++
			}
			if out.Err != nil {
				quarantineCounter(tm, out.Err).Inc()
				jal.Point(events.TypeQuarantine, int64(out.Index), 0, QuarantineCause(out.Err))
				if firstErr == nil {
					firstErr = &TrialError{Index: out.Index, Name: out.Name, Err: out.Err}
				}
			}
			if sinkErr == nil {
				if err := sink.Consume(out); err != nil {
					sinkErr = &SinkError{Err: err}
					rawErr = err
					aborted.Store(true)
				} else {
					delivered++
				}
			}
			next++
			if jal != nil && batchN >= int64(jal.BatchEvery()) {
				jal.EndBatch(batchSpan, batchFirst, batchN)
				batchSpan, batchN = 0, 0
			}
		}
		if occ := doneCount - next; occ > maxOcc {
			maxOcc = occ
		}
	})
	if batchSpan != 0 {
		jal.EndBatch(batchSpan, batchFirst, batchN)
	}
	tm.ReorderHighWater.Observe(int64(maxOcc))
	if sinkErr != nil {
		// A sink that refused a record BECAUSE a context ended (a
		// context-aware retry wrapper aborting its backoff sleep during a
		// shutdown drain) is a cooperative cancellation, not an IO failure:
		// the delivered prefix is exactly what SweepToCtx's own
		// cancellation leaves behind, so it classifies the same way —
		// CanceledError, resumable, exit code 5 rather than 3. The raw
		// Consume error is wrapped (not the SinkError envelope) so the
		// result does NOT classify as an IO failure, and Done counts only
		// the records the sink actually accepted — the refused record was
		// never written.
		if errors.Is(rawErr, context.Canceled) || errors.Is(rawErr, context.DeadlineExceeded) {
			return &CanceledError{Done: delivered, Total: n, Err: rawErr}
		}
		return sinkErr
	}
	if ctxErr != nil {
		tm.Canceled.Add(uint64(n - doneCount))
		return &CanceledError{Done: next, Total: n, Err: ctxErr}
	}
	return firstErr
}

// quarantineCounter classifies a quarantined trial's error by cause for
// telemetry: automaton/component panics, trial-deadline overruns, and
// everything else (configuration or execution errors). The returned counter
// may be nil (telemetry disabled); Inc on a nil counter is a no-op.
func quarantineCounter(tm *telemetry.SimMetrics, err error) *telemetry.Counter {
	switch QuarantineCause(err) {
	case events.CausePanic:
		return tm.QuarantinePanic
	case events.CauseDeadline:
		return tm.QuarantineDeadline
	default:
		return tm.QuarantineOther
	}
}

// QuarantineCause names a quarantined trial's cause with the journal's
// constants — the single classification both the telemetry counters and
// the event stream report, so they always reconcile.
func QuarantineCause(err error) string {
	var pe *engine.PanicError
	var de *DeadlineError
	switch {
	case errors.As(err, &pe):
		return events.CausePanic
	case errors.As(err, &de):
		return events.CauseDeadline
	default:
		return events.CauseOther
	}
}
