package sim

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/model"
)

// Result is the digested outcome of one trial: everything the experiment
// tables and sweep aggregations read, without retaining the execution
// trace. Fields derive deterministically from the trial alone, so a Result
// slice is byte-identical regardless of how many workers produced it.
type Result struct {
	// Index is the trial's position in the executed scenario slice.
	Index int
	// Name echoes the scenario's Name.
	Name string
	// Seed echoes the scenario's seed.
	Seed int64

	// Rounds is the number of rounds executed.
	Rounds int
	// AllDecided reports whether every non-crashed process decided.
	AllDecided bool
	// Decisions is the number of processes that decided.
	Decisions int
	// DecidedValues is the sorted set of distinct decided values.
	DecidedValues []model.Value
	// LastDecisionRound is the latest round at which any process decided
	// (0 if none).
	LastDecisionRound int

	// AgreementOK, ValidityOK (strong validity), and TerminationOK report
	// the consensus property checks; TerminationOK exempts processes the
	// scenario's crash schedule names.
	AgreementOK   bool
	ValidityOK    bool
	TerminationOK bool

	// Err records a configuration or execution error; all other fields are
	// zero when it is set.
	Err error
}

// ConsensusOK reports whether the trial satisfied agreement, strong
// validity, and termination.
func (r Result) ConsensusOK() bool {
	return r.AgreementOK && r.ValidityOK && r.TerminationOK
}

// RunTrial executes one scenario and digests its outcome.
func RunTrial(index int, s Scenario) Result {
	res, err := Run(s)
	if err != nil {
		return Result{Index: index, Name: s.Name, Seed: s.Seed, Err: err}
	}
	return Result{
		Index:             index,
		Name:              s.Name,
		Seed:              s.Seed,
		Rounds:            res.Rounds,
		AllDecided:        res.AllDecided,
		Decisions:         len(res.Decisions),
		DecidedValues:     res.Execution.DecidedValues(),
		LastDecisionRound: res.Execution.LastDecisionRound(),
		AgreementOK:       engine.CheckAgreement(res) == nil,
		ValidityOK:        engine.CheckStrongValidity(res) == nil,
		TerminationOK:     engine.CheckTermination(res, s.Crashes) == nil,
	}
}

// Runner executes independent trials on a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
}

// Map runs fn(0..n-1) across the pool and returns when all calls complete.
// fn must confine its effects to slot i of whatever it writes (the
// parallel-for contract); under that contract the combined output is
// independent of Workers. It is the generic entry point for trials that are
// not engine runs (lower-bound pipelines, multihop floods, substrates).
func (r Runner) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := r.Workers
	if w <= 0 {
		w = stdruntime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Sweep executes every scenario and returns the digested results in
// scenario order. The first per-trial error (by index) is also returned;
// the result slice is complete either way.
func (r Runner) Sweep(scenarios []Scenario) ([]Result, error) {
	results := make([]Result, len(scenarios))
	r.Map(len(scenarios), func(i int) {
		results[i] = RunTrial(i, scenarios[i])
	})
	for i := range results {
		if results[i].Err != nil {
			return results, fmt.Errorf("sim: trial %d (%s): %w", i, results[i].Name, results[i].Err)
		}
	}
	return results, nil
}
