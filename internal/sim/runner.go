package sim

import (
	"fmt"
	stdruntime "runtime"
	"sync"
	"sync/atomic"

	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/model"
)

// Result is the digested outcome of one trial: everything the experiment
// tables and sweep aggregations read, without retaining the execution
// trace. Fields derive deterministically from the trial alone, so a Result
// slice is byte-identical regardless of how many workers produced it.
type Result struct {
	// Index is the trial's position in the executed scenario slice.
	Index int
	// Name echoes the scenario's Name.
	Name string
	// Seed echoes the scenario's seed.
	Seed int64

	// Rounds is the number of rounds executed.
	Rounds int
	// AllDecided reports whether every non-crashed process decided.
	AllDecided bool
	// Decisions is the number of processes that decided.
	Decisions int
	// DecidedValues is the sorted set of distinct decided values.
	DecidedValues []model.Value
	// LastDecisionRound is the latest round at which any process decided
	// (0 if none).
	LastDecisionRound int

	// AgreementOK, ValidityOK (strong validity), and TerminationOK report
	// the consensus property checks; TerminationOK exempts processes the
	// scenario's crash schedule names.
	AgreementOK   bool
	ValidityOK    bool
	TerminationOK bool

	// Err records a configuration or execution error; all other fields are
	// zero when it is set.
	Err error
}

// ConsensusOK reports whether the trial satisfied agreement, strong
// validity, and termination.
func (r Result) ConsensusOK() bool {
	return r.AgreementOK && r.ValidityOK && r.TerminationOK
}

// RunTrial executes one scenario and digests its outcome, discarding the
// underlying execution.
func RunTrial(index int, s Scenario) Result {
	r, _ := RunTrialFull(index, s)
	return r
}

// RunTrialFull executes one scenario and returns both the digested outcome
// and the underlying engine result — with whatever trace the scenario's
// mode recorded. The forensic replay path uses it to audit a fresh
// TraceFull execution against a recorded digest produced by this same
// digest logic; the engine result is nil when the trial errored.
func RunTrialFull(index int, s Scenario) (Result, *engine.Result) {
	res, err := Run(s)
	if err != nil {
		return Result{Index: index, Name: s.Name, Seed: s.Seed, Err: err}, nil
	}
	return Result{
		Index:             index,
		Name:              s.Name,
		Seed:              s.Seed,
		Rounds:            res.Rounds,
		AllDecided:        res.AllDecided,
		Decisions:         len(res.Decisions),
		DecidedValues:     res.Execution.DecidedValues(),
		LastDecisionRound: res.Execution.LastDecisionRound(),
		AgreementOK:       engine.CheckAgreement(res) == nil,
		ValidityOK:        engine.CheckStrongValidity(res) == nil,
		TerminationOK:     engine.CheckTermination(res, s.Crashes) == nil,
	}, res
}

// ResultSink consumes digested trial results as a sweep produces them.
// Runner.SweepTo delivers results strictly in ascending index order and
// never calls Consume concurrently, so implementations need no locking.
// internal/sink provides the standard implementations (in-memory
// collection, buffered JSONL streaming, fan-out).
type ResultSink interface {
	Consume(r Result) error
}

// Runner executes independent trials on a worker pool.
type Runner struct {
	// Workers is the pool size; <= 0 selects GOMAXPROCS.
	Workers int
}

// Map runs fn(0..n-1) across the pool and returns when all calls complete.
// fn must confine its effects to slot i of whatever it writes (the
// parallel-for contract); under that contract the combined output is
// independent of Workers. It is the generic entry point for trials that are
// not engine runs (lower-bound pipelines, multihop floods, substrates).
func (r Runner) Map(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := r.Workers
	if w <= 0 {
		w = stdruntime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// Sweep executes every scenario and returns the digested results in
// scenario order. The first per-trial error (by index) is also returned;
// the result slice is complete either way.
func (r Runner) Sweep(scenarios []Scenario) ([]Result, error) {
	results := make([]Result, len(scenarios))
	err := r.SweepTo(scenarios, sliceSink(results))
	return results, err
}

// sliceSink is the in-memory sink behind Sweep: results land in their slot.
type sliceSink []Result

func (s sliceSink) Consume(r Result) error {
	s[r.Index] = r
	return nil
}

// SweepTo executes every scenario on the worker pool and streams the
// digested results into sink in strict scenario order, without accumulating
// them: the sweep's memory footprint is the reorder window (bounded by the
// worker count's out-of-orderness), not the grid size. The stream delivered
// to the sink is byte-identical for any worker count. Results whose trial
// errored are delivered too (with Err set) and do not stop the sweep; a
// sink Consume error does — remaining trials are skipped and the sink error
// is returned. Otherwise SweepTo returns the first per-trial error by
// index, after all trials complete.
func (r Runner) SweepTo(scenarios []Scenario, sink ResultSink) error {
	return r.sweepTo(len(scenarios), func(i int) Result {
		return RunTrial(i, scenarios[i])
	}, sink)
}

// SweepTrialsTo is SweepTo over an indexed shard (see ShardScenarios): each
// trial's Result carries its global sweep index, and delivery order is the
// trials slice order — ascending global index for shards built by
// ShardScenarios, so concatenating the k shard streams sorted by index
// reproduces the unsharded stream byte for byte.
func (r Runner) SweepTrialsTo(trials []Trial, sink ResultSink) error {
	return r.sweepTo(len(trials), func(i int) Result {
		res := RunTrial(trials[i].Index, trials[i].Scenario)
		return res
	}, sink)
}

// sweepTo runs fn(0..n-1) on the pool and hands each Result to the sink in
// ascending slot order. A mutex-guarded reorder window bridges out-of-order
// completion to the sink's strictly sequential contract; the sink is never
// called concurrently. A Consume error aborts the sweep: trials already in
// flight finish (at most one per worker), every other remaining trial is
// skipped, and the sink error is returned. Per-trial errors, by contrast,
// never stop the sweep — each trial is independent, and the caller gets the
// first one (by index) after all trials ran.
func (r Runner) sweepTo(n int, fn func(i int) Result, sink ResultSink) error {
	buf := make([]Result, n)
	done := make([]bool, n)
	var (
		aborted  atomic.Bool
		mu       sync.Mutex
		next     int
		firstErr error // first per-trial Err, by slot order
		sinkErr  error // first Consume error; aborts the sweep
	)
	r.Map(n, func(i int) {
		if aborted.Load() {
			return
		}
		res := fn(i)
		mu.Lock()
		defer mu.Unlock()
		buf[i] = res
		done[i] = true
		for next < n && done[next] {
			out := buf[next]
			buf[next] = Result{} // release the trial's memory once delivered
			if out.Err != nil && firstErr == nil {
				firstErr = fmt.Errorf("sim: trial %d (%s): %w", out.Index, out.Name, out.Err)
			}
			if sinkErr == nil {
				if err := sink.Consume(out); err != nil {
					sinkErr = fmt.Errorf("sim: result sink: %w", err)
					aborted.Store(true)
				}
			}
			next++
		}
	})
	if sinkErr != nil {
		return sinkErr
	}
	return firstErr
}
