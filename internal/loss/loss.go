// Package loss implements the message-loss adversaries of the paper's
// communication model (Section 3.3). The model places no constraint on loss
// except self-delivery (a broadcaster hears itself, Definition 11
// constraint 5) and — when assumed — eventual collision freedom
// (Property 1). Everything else is adversary's choice, and the paper's
// proofs exploit specific adversaries; each of those is implemented here,
// alongside the stochastic models that match the empirical motivation
// (20–50% loss, capture effect).
package loss

import (
	"math/rand"
	"slices"

	"adhocconsensus/internal/model"
	"adhocconsensus/internal/seedstream"
)

// DeliveryFunc reports whether receiver hears sender's broadcast in the
// planned round. The engine never asks about self-delivery: a broadcaster
// always receives its own message.
type DeliveryFunc func(receiver, sender model.ProcessID) bool

// Adversary plans message delivery one round at a time. Plan is called once
// per round with the sorted sender set and the sorted full process set, so
// implementations drawing randomness observe a deterministic call order.
type Adversary interface {
	Plan(r int, senders, procs []model.ProcessID) DeliveryFunc
}

// ConcurrentPlanner marks adversaries whose planned DeliveryFunc is safe for
// concurrent calls: Plan itself is still invoked sequentially once per
// round, but the returned func must be a pure read of the plan (no lazy
// draws, no memoization writes). The engines' parallel delivery core only
// engages for adversaries carrying this marker; everything else (notably
// bespoke Func closures) silently falls back to the sequential path.
type ConcurrentPlanner interface {
	Adversary
	// ConcurrentPlan is the marker method; it is never called.
	ConcurrentPlan()
}

// ConcurrentSafe reports whether a's delivery funcs may be consulted
// concurrently: a carries the ConcurrentPlanner marker, or is an ECF
// wrapper around a safe (or nil) base.
func ConcurrentSafe(a Adversary) bool {
	switch x := a.(type) {
	case ECF:
		if x.Base == nil {
			return true
		}
		return ConcurrentSafe(x.Base)
	default:
		_, ok := a.(ConcurrentPlanner)
		return ok
	}
}

// ShardedPlanner is implemented by adversaries whose per-round plan can be
// filled shard-parallel. PlanShards prepares the round and returns a fill
// function plus the DeliveryFunc reading the finished plan:
//
//   - fill(lo, hi) draws the loss rows of receivers procs[lo:hi]. Distinct
//     shards touch disjoint state, so the engines run fill concurrently
//     over a partition of [0, len(procs)) — alongside the delivery shards'
//     other per-receiver work — and consult fn only after every shard
//     completes.
//   - A nil fill means the plan is already complete: constant plans, ECF
//     short-circuit rounds, and v1 (sequential-schedule) adversaries, whose
//     draws are order-dependent and therefore performed inside PlanShards
//     itself.
//
// PlanShards must be equivalent to Plan: calling fill(0, len(procs)) inline
// yields the same plan Plan would have produced. The engines consult it
// only for adversaries that already pass the ConcurrentSafe gate; it is
// deliberately not bundled with the ConcurrentPlanner marker so that
// wrappers like ECF can forward sharding without asserting safety.
type ShardedPlanner interface {
	Adversary
	PlanShards(r int, senders, procs []model.ProcessID) (fill func(lo, hi int), fn DeliveryFunc)
}

// deliverAll is the everything-arrives plan.
func deliverAll(model.ProcessID, model.ProcessID) bool { return true }

// deliverNone is the everything-lost plan (self-delivery still applies).
func deliverNone(model.ProcessID, model.ProcessID) bool { return false }

// None is the lossless channel: every broadcast reaches every process.
type None struct{}

// Plan implements Adversary.
func (None) Plan(int, []model.ProcessID, []model.ProcessID) DeliveryFunc { return deliverAll }

// ConcurrentPlan marks the constant plan as concurrency-safe.
func (None) ConcurrentPlan() {}

// Drop loses every message except self-deliveries: the "never-ending
// collisions" environment of Section 7.4 and Theorem 9, where collision
// notifications are the only channel.
type Drop struct{}

// Plan implements Adversary.
func (Drop) Plan(int, []model.ProcessID, []model.ProcessID) DeliveryFunc { return deliverNone }

// ConcurrentPlan marks the constant plan as concurrency-safe.
func (Drop) ConcurrentPlan() {}

// Alpha is the loss rule of the paper's alpha executions (Definition 24):
// if a single process broadcasts, everyone receives it; if more than one
// broadcasts, every cross-delivery is lost (broadcasters keep their own
// message).
type Alpha struct{}

// Plan implements Adversary.
func (Alpha) Plan(_ int, senders, _ []model.ProcessID) DeliveryFunc {
	if len(senders) == 1 {
		return deliverAll
	}
	return deliverNone
}

// ConcurrentPlan marks the constant plan as concurrency-safe.
func (Alpha) ConcurrentPlan() {}

// ECF wraps a base adversary with eventual collision freedom (Property 1):
// from round From on, a lone broadcaster is heard by every process. Other
// rounds defer to the base adversary.
type ECF struct {
	Base Adversary
	From int
}

// Plan implements Adversary.
func (e ECF) Plan(r int, senders, procs []model.ProcessID) DeliveryFunc {
	if r >= e.From && len(senders) == 1 {
		return deliverAll
	}
	base := e.Base
	if base == nil {
		base = None{}
	}
	return base.Plan(r, senders, procs)
}

// PlanShards implements ShardedPlanner by forwarding to the base adversary.
// Collision-free rounds short-circuit to the constant plan without
// consulting the base, so — exactly as under Plan — they consume no draws.
func (e ECF) PlanShards(r int, senders, procs []model.ProcessID) (func(lo, hi int), DeliveryFunc) {
	if r >= e.From && len(senders) == 1 {
		return nil, deliverAll
	}
	base := e.Base
	if base == nil {
		base = None{}
	}
	if sp, ok := base.(ShardedPlanner); ok {
		return sp.PlanShards(r, senders, procs)
	}
	return nil, base.Plan(r, senders, procs)
}

// denseIndex maps process IDs to plan-row offsets in O(1) when the process
// set is a contiguous ID range (the common case: sim materializes processes
// 1..n). It replaces the per-delivery binary-search pair on the hottest
// path; non-contiguous sets and foreign IDs fall back to binary search with
// the exact same semantics.
type denseIndex struct {
	on   bool
	base model.ProcessID // procs[0] when on
	span int             // len(procs) when on
	sidx []int32         // sender index by ID offset, -1 = not a sender
}

// build prepares the index for this round's (senders, procs); it degrades
// to the binary-search fallback (on=false) when procs are non-contiguous or
// a sender falls outside their range.
func (d *denseIndex) build(senders, procs []model.ProcessID) {
	d.on = false
	n := len(procs)
	if n == 0 || int(procs[n-1])-int(procs[0]) != n-1 {
		return
	}
	if cap(d.sidx) < n {
		d.sidx = make([]int32, n)
	}
	d.sidx = d.sidx[:n]
	for i := range d.sidx {
		d.sidx[i] = -1
	}
	for j, snd := range senders {
		off := int(snd) - int(procs[0])
		if off < 0 || off >= n {
			return
		}
		d.sidx[off] = int32(j)
	}
	d.base = procs[0]
	d.span = n
	d.on = true
}

// receiver returns rcv's row index in procs.
func (d *denseIndex) receiver(rcv model.ProcessID, procs []model.ProcessID) (int, bool) {
	if d.on {
		off := int(rcv) - int(d.base)
		if off < 0 || off >= d.span {
			return 0, false
		}
		return off, true
	}
	return slices.BinarySearch(procs, rcv)
}

// sender returns snd's column index in senders.
func (d *denseIndex) sender(snd model.ProcessID, senders []model.ProcessID) (int, bool) {
	if d.on {
		off := int(snd) - int(d.base)
		if off < 0 || off >= d.span || d.sidx[off] < 0 {
			return 0, false
		}
		return int(d.sidx[off]), true
	}
	return slices.BinarySearch(senders, snd)
}

// Probabilistic loses each (receiver, sender) delivery independently with
// probability P, matching the empirical 20–50% loss rates cited in
// Section 1.1.
//
// Under the default v1 seed schedule, draws come from Rng in deterministic
// iteration order (receivers outer, senders inner, self-pairs skipped) —
// identical to every earlier version, so equal seeds keep producing
// identical executions. Under seedstream.V2 the adversary instead reads the
// counter stream keyed by (Seed, round, receiver): each receiver's row is
// an independent, order-free sequence, so shards fill disjoint receiver
// ranges concurrently via PlanShards.
//
// The adversary reuses an internal loss matrix and its DeliveryFunc between
// rounds — steady-state Plan calls allocate nothing — so the func returned
// by Plan is valid only until the next Plan call.
type Probabilistic struct {
	P   float64
	Rng *rand.Rand // v1 draw source; unused under V2

	// Schedule selects the seed schedule (seedstream.V1 when zero); Seed
	// keys the V2 counter streams and is unused under v1.
	Schedule int
	Seed     int64

	round   int
	lost    []bool // len(procs)×len(senders) scratch, row-major by receiver
	procs   []model.ProcessID
	senders []model.ProcessID
	dense   denseIndex
	fn      DeliveryFunc     // cached closure over the scratch state
	fill    func(lo, hi int) // cached V2 row filler
}

// NewProbabilistic returns a probabilistic adversary with its own seeded
// generator (seed schedule v1).
func NewProbabilistic(p float64, seed int64) *Probabilistic {
	return &Probabilistic{P: p, Rng: rand.New(rand.NewSource(seed))}
}

// NewProbabilisticV2 returns a probabilistic adversary drawing from the
// seed-schedule-v2 counter streams keyed by seed.
func NewProbabilisticV2(p float64, seed int64) *Probabilistic {
	return &Probabilistic{P: p, Seed: seed, Schedule: seedstream.V2}
}

// begin sizes the round's scratch and caches the plan closures.
func (a *Probabilistic) begin(r int, senders, procs []model.ProcessID) {
	need := len(procs) * len(senders)
	if cap(a.lost) < need {
		a.lost = make([]bool, need)
	}
	a.lost = a.lost[:need]
	a.round = r
	a.procs = procs
	a.senders = senders
	a.dense.build(senders, procs)
	if a.fn == nil {
		a.fn = func(rcv, snd model.ProcessID) bool {
			i, ok1 := a.dense.receiver(rcv, a.procs)
			j, ok2 := a.dense.sender(snd, a.senders)
			if !ok1 || !ok2 {
				return true
			}
			return !a.lost[i*len(a.senders)+j]
		}
	}
	if a.fill == nil {
		a.fill = func(lo, hi int) {
			k := len(a.senders)
			for i := lo; i < hi; i++ {
				rcv := a.procs[i]
				row := a.lost[i*k : (i+1)*k]
				key := seedstream.Key(a.Seed, a.round, uint64(rcv))
				for j, snd := range a.senders {
					if rcv == snd {
						row[j] = false
						continue
					}
					// Draw j of the receiver's stream, self-pairs included in
					// the indexing: the row is a pure function of (key, j).
					row[j] = seedstream.Float64At(key, j) < a.P
				}
			}
		}
	}
}

// Plan implements Adversary.
func (a *Probabilistic) Plan(r int, senders, procs []model.ProcessID) DeliveryFunc {
	fill, fn := a.PlanShards(r, senders, procs)
	if fill != nil {
		fill(0, len(procs))
	}
	return fn
}

// PlanShards implements ShardedPlanner. Under V2 it returns the
// counter-stream row filler; under v1 the order-dependent Rng draws happen
// here, sequentially, and the returned fill is nil.
func (a *Probabilistic) PlanShards(r int, senders, procs []model.ProcessID) (func(lo, hi int), DeliveryFunc) {
	a.begin(r, senders, procs)
	if seedstream.Normalize(a.Schedule) == seedstream.V2 {
		return a.fill, a.fn
	}
	k := len(senders)
	for i, rcv := range procs {
		row := a.lost[i*k : (i+1)*k]
		for j, snd := range senders {
			if rcv == snd {
				row[j] = false
				continue
			}
			row[j] = a.Rng.Float64() < a.P
		}
	}
	return nil, a.fn
}

// ConcurrentPlan marks the delivery func — a pure read of the loss matrix
// drawn during Plan — as concurrency-safe.
func (*Probabilistic) ConcurrentPlan() {}

// Capture models the capture effect (Section 1.1, [71]): when two or more
// processes broadcast simultaneously, each receiver either locks onto
// exactly one transmission (probability 1−PNone, uniformly chosen per
// receiver — so different receivers may capture different senders) or
// receives nothing. Lone broadcasts are delivered with probability
// 1−PLoneLoss, modeling outside interference.
//
// Like Probabilistic, the adversary keeps a dense per-receiver scratch (the
// index of the captured sender) and a cached DeliveryFunc between rounds,
// so steady-state Plan calls allocate nothing; the func returned by Plan is
// valid only until the next Plan call. Under the v1 schedule, draws come
// from Rng in deterministic order (one Float64 per receiver, plus an Intn
// sender pick for capturing receivers in a collision, lone senders skipping
// their own draw) — identical to every earlier version. Under seedstream.V2
// each receiver draws from its own (Seed, round, receiver) counter stream,
// so PlanShards fills receiver ranges concurrently.
type Capture struct {
	PNone     float64    // probability a receiver captures nothing in a collision
	PLoneLoss float64    // probability a lone broadcast is lost at a receiver
	Rng       *rand.Rand // v1 draw source; unused under V2

	// Schedule selects the seed schedule (seedstream.V1 when zero); Seed
	// keys the V2 counter streams and is unused under v1.
	Schedule int
	Seed     int64

	round   int
	lone    bool    // this round has a single sender
	capt    []int32 // per-receiver captured sender index, -1 = nothing
	procs   []model.ProcessID
	senders []model.ProcessID
	dense   denseIndex
	fn      DeliveryFunc     // cached closure over the scratch state
	fill    func(lo, hi int) // cached V2 row filler
}

// NewCapture returns a capture-effect adversary with its own seeded
// generator (seed schedule v1).
func NewCapture(pNone, pLoneLoss float64, seed int64) *Capture {
	return &Capture{PNone: pNone, PLoneLoss: pLoneLoss, Rng: rand.New(rand.NewSource(seed))}
}

// NewCaptureV2 returns a capture-effect adversary drawing from the
// seed-schedule-v2 counter streams keyed by seed.
func NewCaptureV2(pNone, pLoneLoss float64, seed int64) *Capture {
	return &Capture{PNone: pNone, PLoneLoss: pLoneLoss, Seed: seed, Schedule: seedstream.V2}
}

// begin sizes the round's scratch and caches the plan closures.
func (a *Capture) begin(r int, senders, procs []model.ProcessID) {
	if cap(a.capt) < len(procs) {
		a.capt = make([]int32, len(procs))
	}
	a.capt = a.capt[:len(procs)]
	a.round = r
	a.procs = procs
	a.senders = senders
	a.lone = len(senders) == 1
	a.dense.build(senders, procs)
	if a.fn == nil {
		a.fn = func(rcv, snd model.ProcessID) bool {
			i, ok := a.dense.receiver(rcv, a.procs)
			if a.lone {
				// A lone broadcast either arrives or not, regardless of the
				// queried sender (mirroring the engine, which only asks about
				// actual senders); unknown receivers are not lost.
				return !ok || a.capt[i] >= 0
			}
			j, ok2 := a.dense.sender(snd, a.senders)
			if !ok || !ok2 {
				return false
			}
			return a.capt[i] == int32(j)
		}
	}
	if a.fill == nil {
		a.fill = func(lo, hi int) {
			if a.lone {
				for i := lo; i < hi; i++ {
					rcv := a.procs[i]
					a.capt[i] = 0 // the lone sender
					if rcv != a.senders[0] &&
						seedstream.Float64At(seedstream.Key(a.Seed, a.round, uint64(rcv)), 0) < a.PLoneLoss {
						a.capt[i] = -1
					}
				}
				return
			}
			for i := lo; i < hi; i++ {
				key := seedstream.Key(a.Seed, a.round, uint64(a.procs[i]))
				if seedstream.Float64At(key, 0) < a.PNone {
					a.capt[i] = -1 // captures nothing
					continue
				}
				// Uniform sender pick from draw 1; the 64-bit modulo bias is
				// below 2^-50 for any realistic sender count.
				a.capt[i] = int32(seedstream.At(key, 1) % uint64(len(a.senders)))
			}
		}
	}
}

// Plan implements Adversary.
func (a *Capture) Plan(r int, senders, procs []model.ProcessID) DeliveryFunc {
	fill, fn := a.PlanShards(r, senders, procs)
	if fill != nil {
		fill(0, len(procs))
	}
	return fn
}

// PlanShards implements ShardedPlanner. Under V2 it returns the
// counter-stream filler; under v1 the order-dependent Rng draws happen
// here, sequentially, and the returned fill is nil.
func (a *Capture) PlanShards(r int, senders, procs []model.ProcessID) (func(lo, hi int), DeliveryFunc) {
	if len(senders) == 0 {
		return nil, deliverNone
	}
	a.begin(r, senders, procs)
	if seedstream.Normalize(a.Schedule) == seedstream.V2 {
		return a.fill, a.fn
	}
	if a.lone {
		for i, rcv := range procs {
			a.capt[i] = 0 // the lone sender
			if rcv != senders[0] && a.Rng.Float64() < a.PLoneLoss {
				a.capt[i] = -1
			}
		}
	} else {
		for i := range procs {
			if a.Rng.Float64() < a.PNone {
				a.capt[i] = -1 // captures nothing
				continue
			}
			a.capt[i] = int32(a.Rng.Intn(len(senders)))
		}
	}
	return nil, a.fn
}

// ConcurrentPlan marks the delivery func — a pure read of the capture table
// drawn during Plan — as concurrency-safe.
func (*Capture) ConcurrentPlan() {}

// Partition splits the processes into groups and loses every cross-group
// message through round Until (inclusive); afterwards the channel is
// lossless. With Until = NoRepair the partition never heals. This is the
// adversary of Theorems 4, 6, 7, and 8: two groups that cannot hear each
// other run what they believe are complete executions.
type Partition struct {
	GroupOf func(model.ProcessID) int
	Until   int
}

// NoRepair makes a Partition permanent.
const NoRepair = int(^uint(0) >> 1) // max int

// SplitAt returns a group function placing processes < pivot in group 0 and
// the rest in group 1.
func SplitAt(pivot model.ProcessID) func(model.ProcessID) int {
	return func(id model.ProcessID) int {
		if id < pivot {
			return 0
		}
		return 1
	}
}

// Plan implements Adversary.
func (p Partition) Plan(r int, _, _ []model.ProcessID) DeliveryFunc {
	if r > p.Until {
		return deliverAll
	}
	return func(rcv, snd model.ProcessID) bool {
		return p.GroupOf(rcv) == p.GroupOf(snd)
	}
}

// Func adapts a function to the Adversary interface for bespoke loss
// patterns in tests and proofs.
type Func func(r int, senders, procs []model.ProcessID) DeliveryFunc

// Plan implements Adversary.
func (f Func) Plan(r int, senders, procs []model.ProcessID) DeliveryFunc {
	return f(r, senders, procs)
}
