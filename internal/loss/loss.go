// Package loss implements the message-loss adversaries of the paper's
// communication model (Section 3.3). The model places no constraint on loss
// except self-delivery (a broadcaster hears itself, Definition 11
// constraint 5) and — when assumed — eventual collision freedom
// (Property 1). Everything else is adversary's choice, and the paper's
// proofs exploit specific adversaries; each of those is implemented here,
// alongside the stochastic models that match the empirical motivation
// (20–50% loss, capture effect).
package loss

import (
	"math/rand"
	"slices"

	"adhocconsensus/internal/model"
)

// DeliveryFunc reports whether receiver hears sender's broadcast in the
// planned round. The engine never asks about self-delivery: a broadcaster
// always receives its own message.
type DeliveryFunc func(receiver, sender model.ProcessID) bool

// Adversary plans message delivery one round at a time. Plan is called once
// per round with the sorted sender set and the sorted full process set, so
// implementations drawing randomness observe a deterministic call order.
type Adversary interface {
	Plan(r int, senders, procs []model.ProcessID) DeliveryFunc
}

// ConcurrentPlanner marks adversaries whose planned DeliveryFunc is safe for
// concurrent calls: Plan itself is still invoked sequentially once per
// round, but the returned func must be a pure read of the plan (no lazy
// draws, no memoization writes). The engines' parallel delivery core only
// engages for adversaries carrying this marker; everything else (notably
// bespoke Func closures) silently falls back to the sequential path.
type ConcurrentPlanner interface {
	Adversary
	// ConcurrentPlan is the marker method; it is never called.
	ConcurrentPlan()
}

// ConcurrentSafe reports whether a's delivery funcs may be consulted
// concurrently: a carries the ConcurrentPlanner marker, or is an ECF
// wrapper around a safe (or nil) base.
func ConcurrentSafe(a Adversary) bool {
	switch x := a.(type) {
	case ECF:
		if x.Base == nil {
			return true
		}
		return ConcurrentSafe(x.Base)
	default:
		_, ok := a.(ConcurrentPlanner)
		return ok
	}
}

// deliverAll is the everything-arrives plan.
func deliverAll(model.ProcessID, model.ProcessID) bool { return true }

// deliverNone is the everything-lost plan (self-delivery still applies).
func deliverNone(model.ProcessID, model.ProcessID) bool { return false }

// None is the lossless channel: every broadcast reaches every process.
type None struct{}

// Plan implements Adversary.
func (None) Plan(int, []model.ProcessID, []model.ProcessID) DeliveryFunc { return deliverAll }

// ConcurrentPlan marks the constant plan as concurrency-safe.
func (None) ConcurrentPlan() {}

// Drop loses every message except self-deliveries: the "never-ending
// collisions" environment of Section 7.4 and Theorem 9, where collision
// notifications are the only channel.
type Drop struct{}

// Plan implements Adversary.
func (Drop) Plan(int, []model.ProcessID, []model.ProcessID) DeliveryFunc { return deliverNone }

// ConcurrentPlan marks the constant plan as concurrency-safe.
func (Drop) ConcurrentPlan() {}

// Alpha is the loss rule of the paper's alpha executions (Definition 24):
// if a single process broadcasts, everyone receives it; if more than one
// broadcasts, every cross-delivery is lost (broadcasters keep their own
// message).
type Alpha struct{}

// Plan implements Adversary.
func (Alpha) Plan(_ int, senders, _ []model.ProcessID) DeliveryFunc {
	if len(senders) == 1 {
		return deliverAll
	}
	return deliverNone
}

// ConcurrentPlan marks the constant plan as concurrency-safe.
func (Alpha) ConcurrentPlan() {}

// ECF wraps a base adversary with eventual collision freedom (Property 1):
// from round From on, a lone broadcaster is heard by every process. Other
// rounds defer to the base adversary.
type ECF struct {
	Base Adversary
	From int
}

// Plan implements Adversary.
func (e ECF) Plan(r int, senders, procs []model.ProcessID) DeliveryFunc {
	if r >= e.From && len(senders) == 1 {
		return deliverAll
	}
	base := e.Base
	if base == nil {
		base = None{}
	}
	return base.Plan(r, senders, procs)
}

// Probabilistic loses each (receiver, sender) delivery independently with
// probability P, matching the empirical 20–50% loss rates cited in
// Section 1.1. Draws are made in deterministic order, so runs with equal
// seeds are identical.
//
// The adversary reuses an internal loss matrix and its DeliveryFunc between
// rounds — steady-state Plan calls allocate nothing — so the func returned
// by Plan is valid only until the next Plan call.
type Probabilistic struct {
	P   float64
	Rng *rand.Rand

	lost    []bool // len(procs)×len(senders) scratch, row-major by receiver
	procs   []model.ProcessID
	senders []model.ProcessID
	fn      DeliveryFunc // cached closure over the scratch state
}

// NewProbabilistic returns a probabilistic adversary with its own seeded
// generator.
func NewProbabilistic(p float64, seed int64) *Probabilistic {
	return &Probabilistic{P: p, Rng: rand.New(rand.NewSource(seed))}
}

// Plan implements Adversary. Draw order (receivers outer, senders inner,
// self-pairs skipped) is identical to every earlier version, so equal seeds
// keep producing identical executions.
func (a *Probabilistic) Plan(_ int, senders, procs []model.ProcessID) DeliveryFunc {
	k := len(senders)
	need := len(procs) * k
	if cap(a.lost) < need {
		a.lost = make([]bool, need)
	}
	lost := a.lost[:need]
	for i, rcv := range procs {
		row := lost[i*k : (i+1)*k]
		for j, snd := range senders {
			if rcv == snd {
				row[j] = false
				continue
			}
			row[j] = a.Rng.Float64() < a.P
		}
	}
	a.lost = lost
	a.procs = procs
	a.senders = senders
	if a.fn == nil {
		a.fn = func(rcv, snd model.ProcessID) bool {
			i, ok1 := slices.BinarySearch(a.procs, rcv)
			j, ok2 := slices.BinarySearch(a.senders, snd)
			if !ok1 || !ok2 {
				return true
			}
			return !a.lost[i*len(a.senders)+j]
		}
	}
	return a.fn
}

// ConcurrentPlan marks the delivery func — a pure read of the loss matrix
// drawn during Plan — as concurrency-safe.
func (*Probabilistic) ConcurrentPlan() {}

// Capture models the capture effect (Section 1.1, [71]): when two or more
// processes broadcast simultaneously, each receiver either locks onto
// exactly one transmission (probability 1−PNone, uniformly chosen per
// receiver — so different receivers may capture different senders) or
// receives nothing. Lone broadcasts are delivered with probability
// 1−PLoneLoss, modeling outside interference.
//
// Like Probabilistic, the adversary keeps a dense per-receiver scratch (the
// index of the captured sender) and a cached DeliveryFunc between rounds,
// so steady-state Plan calls allocate nothing; the func returned by Plan is
// valid only until the next Plan call.
type Capture struct {
	PNone     float64 // probability a receiver captures nothing in a collision
	PLoneLoss float64 // probability a lone broadcast is lost at a receiver
	Rng       *rand.Rand

	lone    bool    // this round has a single sender
	capt    []int32 // per-receiver captured sender index, -1 = nothing
	procs   []model.ProcessID
	senders []model.ProcessID
	fn      DeliveryFunc // cached closure over the scratch state
}

// NewCapture returns a capture-effect adversary with its own seeded
// generator.
func NewCapture(pNone, pLoneLoss float64, seed int64) *Capture {
	return &Capture{PNone: pNone, PLoneLoss: pLoneLoss, Rng: rand.New(rand.NewSource(seed))}
}

// Plan implements Adversary. Draw order (one Float64 per receiver, plus an
// Intn sender pick for capturing receivers in a collision, lone senders
// skipping their own draw) is identical to every earlier version, so equal
// seeds keep producing identical executions.
func (a *Capture) Plan(_ int, senders, procs []model.ProcessID) DeliveryFunc {
	if len(senders) == 0 {
		return deliverNone
	}
	if cap(a.capt) < len(procs) {
		a.capt = make([]int32, len(procs))
	}
	a.capt = a.capt[:len(procs)]
	a.procs = procs
	a.senders = senders
	a.lone = len(senders) == 1
	if a.lone {
		for i, rcv := range procs {
			a.capt[i] = 0 // the lone sender
			if rcv != senders[0] && a.Rng.Float64() < a.PLoneLoss {
				a.capt[i] = -1
			}
		}
	} else {
		for i := range procs {
			if a.Rng.Float64() < a.PNone {
				a.capt[i] = -1 // captures nothing
				continue
			}
			a.capt[i] = int32(a.Rng.Intn(len(senders)))
		}
	}
	if a.fn == nil {
		a.fn = func(rcv, snd model.ProcessID) bool {
			i, ok := slices.BinarySearch(a.procs, rcv)
			if a.lone {
				// A lone broadcast either arrives or not, regardless of the
				// queried sender (mirroring the engine, which only asks about
				// actual senders); unknown receivers are not lost.
				return !ok || a.capt[i] >= 0
			}
			j, ok2 := slices.BinarySearch(a.senders, snd)
			if !ok || !ok2 {
				return false
			}
			return a.capt[i] == int32(j)
		}
	}
	return a.fn
}

// ConcurrentPlan marks the delivery func — a pure read of the capture table
// drawn during Plan — as concurrency-safe.
func (*Capture) ConcurrentPlan() {}

// Partition splits the processes into groups and loses every cross-group
// message through round Until (inclusive); afterwards the channel is
// lossless. With Until = NoRepair the partition never heals. This is the
// adversary of Theorems 4, 6, 7, and 8: two groups that cannot hear each
// other run what they believe are complete executions.
type Partition struct {
	GroupOf func(model.ProcessID) int
	Until   int
}

// NoRepair makes a Partition permanent.
const NoRepair = int(^uint(0) >> 1) // max int

// SplitAt returns a group function placing processes < pivot in group 0 and
// the rest in group 1.
func SplitAt(pivot model.ProcessID) func(model.ProcessID) int {
	return func(id model.ProcessID) int {
		if id < pivot {
			return 0
		}
		return 1
	}
}

// Plan implements Adversary.
func (p Partition) Plan(r int, _, _ []model.ProcessID) DeliveryFunc {
	if r > p.Until {
		return deliverAll
	}
	return func(rcv, snd model.ProcessID) bool {
		return p.GroupOf(rcv) == p.GroupOf(snd)
	}
}

// Func adapts a function to the Adversary interface for bespoke loss
// patterns in tests and proofs.
type Func func(r int, senders, procs []model.ProcessID) DeliveryFunc

// Plan implements Adversary.
func (f Func) Plan(r int, senders, procs []model.ProcessID) DeliveryFunc {
	return f(r, senders, procs)
}
