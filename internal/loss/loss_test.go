package loss

import (
	"testing"

	"adhocconsensus/internal/model"
)

var (
	procs   = []model.ProcessID{1, 2, 3, 4}
	senders = []model.ProcessID{1, 2}
)

func TestNoneDeliversEverything(t *testing.T) {
	plan := None{}.Plan(1, senders, procs)
	for _, rcv := range procs {
		for _, snd := range senders {
			if !plan(rcv, snd) {
				t.Fatalf("None lost %d->%d", snd, rcv)
			}
		}
	}
}

func TestDropLosesEverything(t *testing.T) {
	plan := Drop{}.Plan(1, senders, procs)
	for _, rcv := range procs {
		for _, snd := range senders {
			if plan(rcv, snd) {
				t.Fatalf("Drop delivered %d->%d", snd, rcv)
			}
		}
	}
}

func TestAlphaSingleSender(t *testing.T) {
	plan := Alpha{}.Plan(1, []model.ProcessID{3}, procs)
	for _, rcv := range procs {
		if !plan(rcv, 3) {
			t.Fatalf("Alpha lost lone broadcast to %d", rcv)
		}
	}
}

func TestAlphaMultiSender(t *testing.T) {
	plan := Alpha{}.Plan(1, senders, procs)
	for _, rcv := range procs {
		for _, snd := range senders {
			if plan(rcv, snd) {
				t.Fatalf("Alpha delivered cross message %d->%d with 2 senders", snd, rcv)
			}
		}
	}
}

func TestECFForcesLoneDelivery(t *testing.T) {
	adv := ECF{Base: Drop{}, From: 5}
	// Before From: base adversary rules.
	plan := adv.Plan(4, []model.ProcessID{1}, procs)
	if plan(2, 1) {
		t.Fatal("ECF must not apply before its round")
	}
	// From round 5 on with one sender: delivered.
	plan = adv.Plan(5, []model.ProcessID{1}, procs)
	if !plan(2, 1) {
		t.Fatal("ECF lone broadcast lost after rcf")
	}
	// Two senders: base rules still apply.
	plan = adv.Plan(6, senders, procs)
	if plan(3, 1) {
		t.Fatal("ECF must not constrain multi-sender rounds")
	}
}

func TestECFNilBase(t *testing.T) {
	adv := ECF{From: 1}
	plan := adv.Plan(1, senders, procs)
	if !plan(3, 1) {
		t.Fatal("nil base must default to lossless")
	}
}

func TestProbabilisticExtremes(t *testing.T) {
	always := NewProbabilistic(0, 7)
	plan := always.Plan(1, senders, procs)
	for _, rcv := range procs {
		for _, snd := range senders {
			if rcv != snd && !plan(rcv, snd) {
				t.Fatal("P=0 lost a message")
			}
		}
	}
	never := NewProbabilistic(1, 7)
	plan = never.Plan(1, senders, procs)
	for _, rcv := range procs {
		for _, snd := range senders {
			if rcv != snd && plan(rcv, snd) {
				t.Fatal("P=1 delivered a message")
			}
		}
	}
}

func TestProbabilisticDeterministicUnderSeed(t *testing.T) {
	a := NewProbabilistic(0.5, 99)
	b := NewProbabilistic(0.5, 99)
	for r := 1; r <= 10; r++ {
		pa := a.Plan(r, senders, procs)
		pb := b.Plan(r, senders, procs)
		for _, rcv := range procs {
			for _, snd := range senders {
				if rcv == snd {
					continue
				}
				if pa(rcv, snd) != pb(rcv, snd) {
					t.Fatalf("round %d: same seed diverged on %d->%d", r, snd, rcv)
				}
			}
		}
	}
}

func TestProbabilisticRateRoughlyHonored(t *testing.T) {
	a := NewProbabilistic(0.3, 11)
	delivered, total := 0, 0
	for r := 1; r <= 2000; r++ {
		plan := a.Plan(r, senders, procs)
		for _, rcv := range procs {
			for _, snd := range senders {
				if rcv == snd {
					continue
				}
				total++
				if plan(rcv, snd) {
					delivered++
				}
			}
		}
	}
	rate := float64(delivered) / float64(total)
	if rate < 0.65 || rate > 0.75 {
		t.Fatalf("delivery rate %.3f, want ~0.70", rate)
	}
}

func TestCaptureCollisionDeliversAtMostOne(t *testing.T) {
	a := NewCapture(0.2, 0, 5)
	manySenders := []model.ProcessID{1, 2, 3}
	for r := 1; r <= 200; r++ {
		plan := a.Plan(r, manySenders, procs)
		for _, rcv := range procs {
			got := 0
			for _, snd := range manySenders {
				if rcv == snd {
					continue
				}
				if plan(rcv, snd) {
					got++
				}
			}
			if got > 1 {
				t.Fatalf("round %d: receiver %d captured %d messages, want <=1", r, rcv, got)
			}
		}
	}
}

func TestCaptureNonUniformReceiveSets(t *testing.T) {
	// The paper's §1.1 example: with two simultaneous broadcasters, two
	// listeners can capture DIFFERENT messages. Check that this outcome
	// occurs within a reasonable number of rounds.
	a := NewCapture(0, 0, 3)
	foundDifferent := false
	for r := 1; r <= 500 && !foundDifferent; r++ {
		plan := a.Plan(r, senders, procs)
		var got3, got4 model.ProcessID = -1, -1
		for _, snd := range senders {
			if plan(3, snd) {
				got3 = snd
			}
			if plan(4, snd) {
				got4 = snd
			}
		}
		if got3 != -1 && got4 != -1 && got3 != got4 {
			foundDifferent = true
		}
	}
	if !foundDifferent {
		t.Fatal("capture effect never produced non-uniform receive sets")
	}
}

func TestCaptureLoneBroadcast(t *testing.T) {
	reliable := NewCapture(0, 0, 1)
	plan := reliable.Plan(1, []model.ProcessID{2}, procs)
	for _, rcv := range procs {
		if rcv != 2 && !plan(rcv, 2) {
			t.Fatal("lossless lone broadcast lost")
		}
	}
	lossy := NewCapture(0, 1, 1)
	plan = lossy.Plan(1, []model.ProcessID{2}, procs)
	for _, rcv := range procs {
		if rcv != 2 && plan(rcv, 2) {
			t.Fatal("PLoneLoss=1 delivered a lone broadcast")
		}
	}
}

func TestCaptureNoSenders(t *testing.T) {
	a := NewCapture(0, 0, 1)
	plan := a.Plan(1, nil, procs)
	if plan(1, 2) {
		t.Fatal("no-sender round delivered something")
	}
}

// TestCaptureSteadyStateAllocationFree pins the dense-scratch treatment:
// after the first round warms the scratch and the cached DeliveryFunc,
// Plan must not allocate in either the collision or the lone-sender
// regime (mirroring Probabilistic below).
func TestCaptureSteadyStateAllocationFree(t *testing.T) {
	a := NewCapture(0.3, 0.2, 9)
	manySenders := []model.ProcessID{1, 2, 3}
	lone := []model.ProcessID{2}
	a.Plan(1, manySenders, procs)
	a.Plan(2, lone, procs)
	r := 3
	allocs := testing.AllocsPerRun(200, func() {
		plan := a.Plan(r, manySenders, procs)
		plan(4, 1)
		plan = a.Plan(r+1, lone, procs)
		plan(4, 2)
		r += 2
	})
	if allocs != 0 {
		t.Fatalf("Capture.Plan allocates %.1f objects/round in steady state, want 0", allocs)
	}
}

// TestProbabilisticSteadyStateAllocationFree pins the same property for the
// probabilistic adversary (the experiment-sweep hot path).
func TestProbabilisticSteadyStateAllocationFree(t *testing.T) {
	a := NewProbabilistic(0.3, 9)
	a.Plan(1, senders, procs)
	r := 2
	allocs := testing.AllocsPerRun(200, func() {
		plan := a.Plan(r, senders, procs)
		plan(4, 1)
		r++
	})
	if allocs != 0 {
		t.Fatalf("Probabilistic.Plan allocates %.1f objects/round in steady state, want 0", allocs)
	}
}

func TestPartitionBlocksCrossGroup(t *testing.T) {
	p := Partition{GroupOf: SplitAt(3), Until: 10}
	plan := p.Plan(5, senders, procs)
	if plan(3, 1) || plan(1, 3) {
		t.Fatal("cross-group message delivered during partition")
	}
	if !plan(2, 1) || !plan(4, 3) {
		t.Fatal("intra-group message lost during partition")
	}
	// After Until the channel heals.
	plan = p.Plan(11, senders, procs)
	if !plan(3, 1) {
		t.Fatal("cross-group message lost after partition healed")
	}
}

func TestPartitionNoRepair(t *testing.T) {
	p := Partition{GroupOf: SplitAt(3), Until: NoRepair}
	plan := p.Plan(1<<30, senders, procs)
	if plan(3, 1) {
		t.Fatal("NoRepair partition healed")
	}
}

func TestFuncAdapter(t *testing.T) {
	calls := 0
	f := Func(func(r int, senders, procs []model.ProcessID) DeliveryFunc {
		calls++
		return func(model.ProcessID, model.ProcessID) bool { return r%2 == 0 }
	})
	if f.Plan(1, senders, procs)(1, 2) {
		t.Fatal("odd round delivered")
	}
	if !f.Plan(2, senders, procs)(1, 2) {
		t.Fatal("even round lost")
	}
	if calls != 2 {
		t.Fatal("adapter not called")
	}
}
