package loss

import (
	"math"
	"testing"

	"adhocconsensus/internal/model"
)

// ids builds the contiguous process set 1..n.
func ids(n int) []model.ProcessID {
	out := make([]model.ProcessID, n)
	for i := range out {
		out[i] = model.ProcessID(i + 1)
	}
	return out
}

// planMatrix renders a plan as a delivery matrix over (procs × senders).
func planMatrix(fn DeliveryFunc, procs, senders []model.ProcessID) string {
	s := ""
	for _, rcv := range procs {
		for _, snd := range senders {
			if fn(rcv, snd) {
				s += "1"
			} else {
				s += "0"
			}
		}
		s += "\n"
	}
	return s
}

// TestV2PlanOrderFree is the tentpole property: filling the v2 plan in
// shards — any shard partition, any order — produces the exact plan the
// inline fill produces, for both adversaries.
func TestV2PlanOrderFree(t *testing.T) {
	procs := ids(31)
	senders := []model.ProcessID{3, 7, 8, 20, 31}
	for _, tc := range []struct {
		name string
		mk   func() ShardedPlanner
	}{
		{"probabilistic", func() ShardedPlanner { return NewProbabilisticV2(0.4, 99) }},
		{"capture", func() ShardedPlanner { return NewCaptureV2(0.3, 0.1, 99) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			inline := tc.mk()
			want := planMatrix(inline.Plan(5, senders, procs), procs, senders)
			for _, shards := range [][]int{
				{31},             // one shard
				{1, 30},          // lopsided
				{10, 11, 10},     // even-ish
				{5, 5, 5, 5, 11}, // many
			} {
				a := tc.mk()
				fill, fn := a.PlanShards(5, senders, procs)
				if fill == nil {
					t.Fatal("v2 PlanShards returned nil fill")
				}
				// Fill shards back to front: the plan must not depend on order.
				bounds := [][2]int{}
				lo := 0
				for _, w := range shards {
					bounds = append(bounds, [2]int{lo, lo + w})
					lo += w
				}
				for i := len(bounds) - 1; i >= 0; i-- {
					fill(bounds[i][0], bounds[i][1])
				}
				if got := planMatrix(fn, procs, senders); got != want {
					t.Fatalf("shards %v: plan differs from inline fill:\n%s\nwant:\n%s", shards, got, want)
				}
			}
		})
	}
}

// TestV2RoundsAndReceiversIndependent checks the keying: the same receiver
// draws differently across rounds, and different receivers draw differently
// within a round (no accidental stream aliasing).
func TestV2RoundsAndReceiversIndependent(t *testing.T) {
	procs := ids(16)
	a := NewProbabilisticV2(0.5, 7)
	r5 := planMatrix(a.Plan(5, procs, procs), procs, procs)
	r6 := planMatrix(a.Plan(6, procs, procs), procs, procs)
	if r5 == r6 {
		t.Fatal("round 5 and round 6 drew identical plans")
	}
}

// TestDenseIndexMatchesBinarySearch runs the same draws through a
// contiguous process set (dense index on) and a non-contiguous one (binary
// search fallback) and checks both paths answer foreign-ID and non-sender
// queries identically to the documented semantics.
func TestDenseIndexMatchesBinarySearch(t *testing.T) {
	sparse := []model.ProcessID{1, 2, 4, 8} // gap: fallback path
	dense := ids(4)                         // contiguous: dense path
	for _, procs := range [][]model.ProcessID{dense, sparse} {
		senders := procs[:2]
		a := NewProbabilistic(0.0, 1) // p=0: every known pair delivers
		fn := a.Plan(1, senders, procs)
		for _, rcv := range procs {
			for _, snd := range senders {
				if !fn(rcv, snd) {
					t.Fatalf("procs=%v: (%d<-%d) lost under p=0", procs, rcv, snd)
				}
			}
		}
		// Foreign receiver and non-sender queries deliver (documented
		// Probabilistic semantics), on both index paths.
		if !fn(model.ProcessID(100), senders[0]) {
			t.Fatalf("procs=%v: foreign receiver lost", procs)
		}
		if !fn(procs[0], model.ProcessID(100)) {
			t.Fatalf("procs=%v: foreign sender lost", procs)
		}

		c := NewCapture(0.0, 0.0, 1) // always captures someone
		cfn := c.Plan(1, senders, procs)
		for _, rcv := range procs {
			got := 0
			for _, snd := range senders {
				if cfn(rcv, snd) {
					got++
				}
			}
			if got != 1 {
				t.Fatalf("procs=%v: receiver %d captured %d senders, want exactly 1", procs, rcv, got)
			}
		}
		// Foreign sender in a collision: not captured (documented Capture
		// semantics), on both index paths.
		if cfn(procs[0], model.ProcessID(100)) {
			t.Fatalf("procs=%v: foreign sender captured", procs)
		}
	}
}

// TestDenseIndexForeignSenderDegrades covers the degrade path: a sender
// outside the contiguous receiver range forces the binary-search fallback,
// which must still answer correctly.
func TestDenseIndexForeignSenderDegrades(t *testing.T) {
	procs := ids(4)
	senders := []model.ProcessID{2, 9} // 9 outside 1..4
	a := NewProbabilistic(0.0, 1)
	fn := a.Plan(1, senders, procs)
	if a.dense.on {
		t.Fatal("dense index stayed on with an out-of-range sender")
	}
	if !fn(1, 2) || !fn(1, 9) {
		t.Fatal("p=0 deliveries lost on the degraded path")
	}
}

// TestV2LossRateMatchesP is the statistical smoke: across many rounds the
// v2 counter streams must lose cross-pairs at rate P within tolerance, for
// the paper's empirical loss band.
func TestV2LossRateMatchesP(t *testing.T) {
	procs := ids(32)
	for _, p := range []float64{0.2, 0.5} {
		a := NewProbabilisticV2(p, 1234)
		lost, total := 0, 0
		for r := 1; r <= 200; r++ {
			fn := a.Plan(r, procs, procs)
			for _, rcv := range procs {
				for _, snd := range procs {
					if rcv == snd {
						continue
					}
					total++
					if !fn(rcv, snd) {
						lost++
					}
				}
			}
		}
		rate := float64(lost) / float64(total)
		if math.Abs(rate-p) > 0.01 {
			t.Errorf("p=%v: observed v2 loss rate %.4f over %d pairs", p, rate, total)
		}
	}
}

// TestV2CaptureRates smokes the capture adversary's v2 draws: lone
// broadcasts lost at PLoneLoss, collisions captured at 1-PNone, captured
// senders spread across the sender set.
func TestV2CaptureRates(t *testing.T) {
	procs := ids(32)
	a := NewCaptureV2(0.3, 0.2, 77)
	loneLost, loneTotal := 0, 0
	for r := 1; r <= 400; r++ {
		fn := a.Plan(r, procs[:1], procs)
		for _, rcv := range procs[1:] {
			loneTotal++
			if !fn(rcv, procs[0]) {
				loneLost++
			}
		}
	}
	if rate := float64(loneLost) / float64(loneTotal); math.Abs(rate-0.2) > 0.02 {
		t.Errorf("lone loss rate %.4f, want ~0.2", rate)
	}
	none, bySender, total := 0, make(map[model.ProcessID]int), 0
	for r := 1; r <= 400; r++ {
		fn := a.Plan(r, procs[:4], procs)
		for _, rcv := range procs {
			total++
			captured := false
			for _, snd := range procs[:4] {
				if fn(rcv, snd) {
					bySender[snd]++
					captured = true
				}
			}
			if !captured {
				none++
			}
		}
	}
	if rate := float64(none) / float64(total); math.Abs(rate-0.3) > 0.02 {
		t.Errorf("capture-nothing rate %.4f, want ~0.3", rate)
	}
	for snd, k := range bySender {
		share := float64(k) / float64(total-none)
		if math.Abs(share-0.25) > 0.03 {
			t.Errorf("sender %d captured share %.4f, want ~0.25", snd, share)
		}
	}
}

// TestV2SteadyStateAllocationFree extends the zero-allocation contract to
// the v2 schedule: after the first round sizes the scratch, Plan allocates
// nothing.
func TestV2SteadyStateAllocationFree(t *testing.T) {
	procs := ids(16)
	for _, tc := range []struct {
		name string
		adv  Adversary
	}{
		{"probabilistic", NewProbabilisticV2(0.4, 5)},
		{"capture", NewCaptureV2(0.3, 0.1, 5)},
	} {
		r := 0
		warm := func() {
			r++
			fn := tc.adv.Plan(r, procs, procs)
			fn(procs[0], procs[1])
		}
		warm()
		if avg := testing.AllocsPerRun(50, warm); avg > 0 {
			t.Errorf("%s: v2 Plan allocates %.1f objects/round in steady state", tc.name, avg)
		}
	}
}

// TestECFShardsShortCircuitWithoutDraws pins two ECF sharding contracts:
// collision-free rounds return the constant plan with a nil fill and
// consume no stream draws (the next contended round's plan is unaffected),
// and contended rounds forward the base's filler.
func TestECFShardsShortCircuitWithoutDraws(t *testing.T) {
	procs := ids(8)
	e := ECF{Base: NewProbabilisticV2(0.4, 3), From: 2}
	fill, fn := e.PlanShards(5, procs[:1], procs)
	if fill != nil {
		t.Fatal("short-circuit round returned a filler")
	}
	for _, rcv := range procs {
		if !fn(rcv, procs[0]) {
			t.Fatal("short-circuit round lost a lone broadcast")
		}
	}
	fill, _ = e.PlanShards(5, procs[:2], procs)
	if fill == nil {
		t.Fatal("contended round did not forward the base filler")
	}
	// The v1 equivalent must also not consume Rng draws on short-circuit
	// rounds: two adversaries, one asked for an extra short-circuit plan,
	// stay in lockstep.
	mk := func() ECF { return ECF{Base: NewProbabilistic(0.4, 3), From: 2} }
	x, y := mk(), mk()
	x.Plan(5, procs[:1], procs) // short-circuit: no draws
	px := planMatrix(x.Plan(6, procs[:2], procs), procs, procs[:2])
	py := planMatrix(y.Plan(6, procs[:2], procs), procs, procs[:2])
	if px != py {
		t.Fatal("ECF short-circuit round consumed v1 Rng draws")
	}
}

// TestV1PlanShardsSequentialEquivalence: a v1 adversary's PlanShards must
// perform the order-dependent draws itself (nil fill) and yield the exact
// plan Plan yields.
func TestV1PlanShardsSequentialEquivalence(t *testing.T) {
	procs := ids(12)
	senders := procs[:5]
	for _, tc := range []struct {
		name string
		mk   func() ShardedPlanner
	}{
		{"probabilistic", func() ShardedPlanner { return NewProbabilistic(0.4, 11) }},
		{"capture", func() ShardedPlanner { return NewCapture(0.3, 0.1, 11) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			a, b := tc.mk(), tc.mk()
			for r := 1; r <= 5; r++ {
				want := planMatrix(a.Plan(r, senders, procs), procs, senders)
				fill, fn := b.PlanShards(r, senders, procs)
				if fill != nil {
					t.Fatalf("round %d: v1 PlanShards returned a filler", r)
				}
				if got := planMatrix(fn, procs, senders); got != want {
					t.Fatalf("round %d: PlanShards plan differs from Plan:\n%s\nwant:\n%s", r, got, want)
				}
			}
		})
	}
}

// TestScheduleConstructors documents which constructor yields which
// schedule.
func TestScheduleConstructors(t *testing.T) {
	for _, tc := range []struct {
		name string
		got  int
		want int
	}{
		{"NewProbabilistic", NewProbabilistic(0.1, 1).Schedule, 0},
		{"NewProbabilisticV2", NewProbabilisticV2(0.1, 1).Schedule, 2},
		{"NewCapture", NewCapture(0.1, 0.1, 1).Schedule, 0},
		{"NewCaptureV2", NewCaptureV2(0.1, 0.1, 1).Schedule, 2},
	} {
		if tc.got != tc.want {
			t.Errorf("%s: Schedule = %d, want %d", tc.name, tc.got, tc.want)
		}
	}
}
