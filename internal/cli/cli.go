// Package cli holds the flag vocabulary and output formatting shared by the
// command-line tools (cmd/consensus-sim, cmd/sweeprun): the mapping from
// flag spellings to public Config values, the multi-trial summary printer,
// and the per-trial seed-provenance report. Keeping one copy here is what
// makes "sweeprun merge" output byte-comparable with "consensus-sim
// -trials" output for the same configuration.
package cli

import (
	"flag"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"adhocconsensus"
	"adhocconsensus/internal/sink"
)

// ParseAlgorithm maps a flag spelling to the public Algorithm. The accepted
// names match sink.Params.Algorithm, so merge tools can parse recorded
// params with the same function.
func ParseAlgorithm(name string) (adhocconsensus.Algorithm, error) {
	switch strings.ToLower(name) {
	case "propose", "alg1":
		return adhocconsensus.AlgorithmPropose, nil
	case "bitbybit", "alg2":
		return adhocconsensus.AlgorithmBitByBit, nil
	case "treewalk", "alg3":
		return adhocconsensus.AlgorithmTreeWalk, nil
	case "leaderrelay", "nonanon":
		return adhocconsensus.AlgorithmLeaderRelay, nil
	default:
		return 0, fmt.Errorf("unknown algorithm %q", name)
	}
}

// ParseLoss maps a flag spelling to the public LossMode.
func ParseLoss(name string) (adhocconsensus.LossMode, error) {
	switch strings.ToLower(name) {
	case "none":
		return adhocconsensus.LossNone, nil
	case "prob", "probabilistic":
		return adhocconsensus.LossProbabilistic, nil
	case "capture":
		return adhocconsensus.LossCapture, nil
	case "drop":
		return adhocconsensus.LossDrop, nil
	default:
		return 0, fmt.Errorf("unknown loss model %q", name)
	}
}

// ParseValues parses the comma-separated initial-value list.
func ParseValues(csv string) ([]adhocconsensus.Value, error) {
	var values []adhocconsensus.Value
	for _, part := range strings.Split(csv, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q: %w", part, err)
		}
		values = append(values, adhocconsensus.Value(v))
	}
	return values, nil
}

// ConfigFlags bundles the shared consensus-configuration flags registered
// on a FlagSet.
type ConfigFlags struct {
	Alg       *string
	Values    *string
	Domain    *uint64
	IDSpace   *uint64
	LossName  *string
	LossP     *float64
	CST       *int
	FPRate    *float64
	Backoff   *bool
	Seed      *int64
	Schedule  *int
	MaxRounds *int
}

// RegisterConfig registers the shared configuration flags with their
// canonical names and defaults.
func RegisterConfig(fs *flag.FlagSet) *ConfigFlags {
	return &ConfigFlags{
		Alg:       fs.String("alg", "bitbybit", "algorithm: propose | bitbybit | treewalk | leaderrelay"),
		Values:    fs.String("values", "3,7,7,1", "comma-separated initial values, one per process"),
		Domain:    fs.Uint64("domain", 0, "|V| (default: max value + 1)"),
		IDSpace:   fs.Uint64("idspace", 0, "|I| for leaderrelay (default 2^48)"),
		LossName:  fs.String("loss", "none", "loss model: none | prob | capture | drop"),
		LossP:     fs.Float64("p", 0.3, "loss probability for prob/capture"),
		CST:       fs.Int("cst", 1, "communication stabilization round (ECF, wake-up, accuracy)"),
		FPRate:    fs.Float64("fp", 0, "detector false positive rate before stabilization"),
		Backoff:   fs.Bool("backoff", false, "use the backoff contention manager instead of a pinned wake-up service"),
		Seed:      fs.Int64("seed", 1, "seed for all randomized components"),
		Schedule:  fs.Int("schedule", 1, "seed schedule: 1 (sequential, historical) | 2 (counter-based, order-free)"),
		MaxRounds: fs.Int("rounds", 100000, "maximum rounds to execute"),
	}
}

// Config assembles the public configuration from the parsed flags,
// including the tree-walk no-ECF rule.
func (f *ConfigFlags) Config() (adhocconsensus.Config, error) {
	alg, err := ParseAlgorithm(*f.Alg)
	if err != nil {
		return adhocconsensus.Config{}, err
	}
	values, err := ParseValues(*f.Values)
	if err != nil {
		return adhocconsensus.Config{}, err
	}
	lossMode, err := ParseLoss(*f.LossName)
	if err != nil {
		return adhocconsensus.Config{}, err
	}
	cfg := adhocconsensus.Config{
		Algorithm:         alg,
		Values:            values,
		Domain:            *f.Domain,
		IDSpace:           *f.IDSpace,
		Loss:              lossMode,
		LossP:             *f.LossP,
		ECFRound:          *f.CST,
		Stable:            *f.CST,
		DetectorRace:      *f.CST,
		FalsePositiveRate: *f.FPRate,
		Seed:              *f.Seed,
		SeedSchedule:      *f.Schedule,
		MaxRounds:         *f.MaxRounds,
	}
	if *f.Backoff {
		cfg.Contention = adhocconsensus.ContentionBackoff
	}
	if alg == adhocconsensus.AlgorithmTreeWalk {
		cfg.ECFRound = 0 // the tree walk needs no delivery guarantee
	}
	return cfg, nil
}

// RecordParams renders the configuration as recorded trial parameters. The
// fingerprint that guards merges comes from the library (TrialResult), not
// from these; they make shard files self-describing.
func RecordParams(c adhocconsensus.Config) sink.Params {
	algs := map[adhocconsensus.Algorithm]string{
		adhocconsensus.AlgorithmPropose:     "propose",
		adhocconsensus.AlgorithmBitByBit:    "bitbybit",
		adhocconsensus.AlgorithmTreeWalk:    "treewalk",
		adhocconsensus.AlgorithmLeaderRelay: "leaderrelay",
	}
	cms := map[adhocconsensus.ContentionMode]string{
		adhocconsensus.ContentionAuto:    "auto",
		adhocconsensus.ContentionWakeUp:  "wakeup",
		adhocconsensus.ContentionLeader:  "leader",
		adhocconsensus.ContentionBackoff: "backoff",
		adhocconsensus.ContentionNone:    "none",
	}
	losses := map[adhocconsensus.LossMode]string{
		adhocconsensus.LossNone:          "none",
		adhocconsensus.LossProbabilistic: "prob",
		adhocconsensus.LossCapture:       "capture",
		adhocconsensus.LossDrop:          "drop",
	}
	det := ""
	if c.DetectorClass != (adhocconsensus.DetectorClass{}) {
		det = c.DetectorClass.Name
	}
	p := sink.Params{
		Algorithm: algs[c.Algorithm],
		N:         len(c.Values),
		Domain:    c.Domain,
		IDSpace:   c.IDSpace,
		Detector:  det,
		Race:      c.DetectorRace,
		FPRate:    c.FalsePositiveRate,
		CM:        cms[c.Contention],
		Stable:    c.Stable,
		Loss:      losses[c.Loss],
		LossP:     c.LossP,
		ECFRound:  c.ECFRound,
		MaxRounds: c.MaxRounds,
		Trace:     "decisions", // multi-trial runs never record views
		SweepSeed: c.Seed,
	}
	if c.SeedSchedule > 1 {
		p.SeedSchedule = c.SeedSchedule
	}
	return p
}

// PrintTrialStats writes the multi-trial summary block in the format
// consensus-sim -trials has always printed.
func PrintTrialStats(w io.Writer, alg adhocconsensus.Algorithm, processes int, st *adhocconsensus.TrialStats) {
	fmt.Fprintf(w, "algorithm : %v\n", alg)
	fmt.Fprintf(w, "processes : %d\n", processes)
	fmt.Fprintf(w, "trials    : %d\n", st.Trials)
	fmt.Fprintf(w, "decided   : %d/%d\n", st.Decided, st.Trials)
	fmt.Fprintf(w, "rounds    : min=%d med=%g mean=%.4g p95=%g max=%d\n",
		st.MinRounds, st.MedianRounds, st.MeanRounds, st.P95Rounds, st.MaxRounds)
	type valueCount struct {
		value  adhocconsensus.Value
		trials int
	}
	agreements := make([]valueCount, 0, len(st.Agreements))
	for v, n := range st.Agreements {
		agreements = append(agreements, valueCount{v, n})
	}
	sort.Slice(agreements, func(i, j int) bool { return agreements[i].value < agreements[j].value })
	for _, va := range agreements {
		fmt.Fprintf(w, "  agreed on %d in %d trial(s)\n", uint64(va.value), va.trials)
	}
	if st.AgreementViolations > 0 {
		fmt.Fprintf(w, "  AGREEMENT VIOLATED in %d trial(s)\n", st.AgreementViolations)
	}
}

// maxFlagged bounds how many anomalous trials PrintSeedProvenance lists per
// category.
const maxFlagged = 5

// PrintSeedProvenance reports, per trial worth re-examining, the derived
// seed that reproduces it standalone: pass the seed to a single run (drop
// -trials) for a byte-identical execution modulo trace recording. Flagged
// are every undecided trial and every agreement violation (up to 5 each),
// plus the slowest trial as the round-count outlier.
func PrintSeedProvenance(w io.Writer, results []adhocconsensus.TrialResult) {
	if len(results) == 0 {
		return
	}
	fmt.Fprintf(w, "seeds     : trial t ran with seed splitmix64(seed, t); rerun one standalone via -seed <trial seed> (drop -trials)\n")
	slowest := 0
	for i, r := range results {
		if r.Rounds > results[slowest].Rounds {
			slowest = i
		}
	}
	s := results[slowest]
	fmt.Fprintf(w, "  slowest   : trial %d (%d rounds) seed %d\n", s.Trial, s.Rounds, s.Seed)
	undecided, violated := 0, 0
	for _, r := range results {
		if !r.Decided {
			if undecided < maxFlagged {
				fmt.Fprintf(w, "  undecided : trial %d (%d rounds) seed %d\n", r.Trial, r.Rounds, r.Seed)
			}
			undecided++
		}
		if len(r.DecidedValues) > 1 {
			if violated < maxFlagged {
				fmt.Fprintf(w, "  VIOLATION : trial %d decided %v, seed %d\n", r.Trial, r.DecidedValues, r.Seed)
			}
			violated++
		}
	}
	if undecided > maxFlagged {
		fmt.Fprintf(w, "  ... and %d more undecided trial(s)\n", undecided-maxFlagged)
	}
	if violated > maxFlagged {
		fmt.Fprintf(w, "  ... and %d more violating trial(s)\n", violated-maxFlagged)
	}
}
