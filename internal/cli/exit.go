package cli

import (
	"context"
	"errors"

	"adhocconsensus/internal/sim"
)

// Exit codes, uniform across the command-line tools (sweeprun subcommands
// and the sweepd daemon). Typed errors from the sweep layer classify
// themselves (ExitCodeOf); commands pin a code explicitly with WithExit
// where the chain alone is ambiguous. Keeping one copy here is what lets
// "sweeprun help exitcodes" document both binaries without drifting from
// either implementation.
const (
	// ExitOK: success (for sweepd, a clean drain-and-shutdown).
	ExitOK = 0
	// ExitUsage: usage or configuration error.
	ExitUsage = 1
	// ExitTrial: the sweep completed but quarantined per-trial errors.
	ExitTrial = 2
	// ExitSink: sink/IO failure — the stream aborted, leaving a valid
	// resumable prefix.
	ExitSink = 3
	// ExitReject: merge/verify/resume/report rejected its input files.
	ExitReject = 4
	// ExitInterrupt: clean interrupt — in-flight trials drained, tail
	// flushed, resumable.
	ExitInterrupt = 5
)

// ExitCodesHelp is the uniform exit-code table, printable on demand so
// operators scripting around the tools do not have to read source comments.
const ExitCodesHelp = `exit codes (uniform across sweeprun subcommands and sweepd):
  0  success (sweepd: clean drain - every job finished or checkpointed)
  1  usage or configuration error
  2  the sweep completed but quarantined per-trial errors (panic, deadline)
  3  sink/IO failure - the stream aborted, leaving a valid resumable prefix
  4  merge/verify/resume/report rejected its input files
  5  clean interrupt - in-flight trials drained, tail flushed, resumable

sweepd maps the same vocabulary onto jobs: a job whose run exits 2 still
completes (its quarantine records are in the stream), 3 retries under
backoff, 4 quarantines the job immediately (its spec cannot produce the
file on disk), and a drain checkpoints every running job for the next
start to resume.
`

// ExitError pins an exit code onto an error chain.
type ExitError struct {
	Code int
	Err  error
}

func (e *ExitError) Error() string { return e.Err.Error() }

func (e *ExitError) Unwrap() error { return e.Err }

// WithExit wraps err with an explicit exit code (nil stays nil).
func WithExit(code int, err error) error {
	if err == nil {
		return nil
	}
	return &ExitError{Code: code, Err: err}
}

// ExitCodeOf classifies an error chain into the documented exit codes: an
// explicit pin wins, then the interrupt, sink, and per-trial markers from
// the sweep layer; anything else is a usage/configuration error.
func ExitCodeOf(err error) int {
	if err == nil {
		return ExitOK
	}
	var ee *ExitError
	if errors.As(err, &ee) {
		return ee.Code
	}
	if IsInterrupt(err) {
		return ExitInterrupt
	}
	var se *sim.SinkError
	if errors.As(err, &se) {
		return ExitSink
	}
	var te *sim.TrialError
	if errors.As(err, &te) {
		return ExitTrial
	}
	return ExitUsage
}

// IsInterrupt reports whether the error chain records a cooperative
// cancellation (the sweep drained and the stream holds a valid prefix).
func IsInterrupt(err error) bool {
	var ce *sim.CanceledError
	return errors.As(err, &ce) || errors.Is(err, context.Canceled)
}
