module adhocconsensus

go 1.24
