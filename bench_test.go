package adhocconsensus

// The benchmark harness: one benchmark per table/figure of EXPERIMENTS.md
// (BenchmarkT1..T9, BenchmarkA1..A3), each regenerating its experiment and
// failing if the experiment's internal paper-shape checks fail, plus
// micro-benchmarks for the simulator itself. Run:
//
//	go test -bench=. -benchmem .
//
// Custom metrics: "rounds" reports the rounds-to-decide of the headline
// configuration in the benchmark, so regressions in algorithmic behavior
// (not just CPU time) are visible in benchstat diffs.

import (
	"fmt"
	"io"
	stdruntime "runtime"
	"testing"

	"adhocconsensus/internal/core"
	"adhocconsensus/internal/detector"
	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/experiments"
	"adhocconsensus/internal/loss"
	"adhocconsensus/internal/model"
	"adhocconsensus/internal/multiset"
	"adhocconsensus/internal/replay"
	"adhocconsensus/internal/runtime"
	"adhocconsensus/internal/sim"
	"adhocconsensus/internal/sink"
	"adhocconsensus/internal/valueset"
)

// benchTable runs an experiment table per iteration and fails the benchmark
// if the experiment's internal checks fail.
func benchTable(b *testing.B, fn func() (*experiments.Table, error)) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		table, err := fn()
		if err != nil {
			b.Fatal(err)
		}
		if !table.Pass {
			b.Fatalf("experiment checks failed:\n%s", table)
		}
	}
}

// BenchmarkT1ClassMatrix regenerates Figure 1 + the §1.5 solvability matrix.
func BenchmarkT1ClassMatrix(b *testing.B) { benchTable(b, experiments.T1ClassMatrix) }

// BenchmarkT2Alg1Termination measures Theorem 1 (Alg 1 ≤ CST+2).
func BenchmarkT2Alg1Termination(b *testing.B) { benchTable(b, experiments.T2Alg1Termination) }

// BenchmarkT3Alg2ValueSweep measures Theorem 2 (Alg 2 ≤ CST+2(lg|V|+1)).
func BenchmarkT3Alg2ValueSweep(b *testing.B) { benchTable(b, experiments.T3Alg2ValueSweep) }

// BenchmarkT4Alg3NoCF measures Theorem 3 (Alg 3 ≤ 8·lg|V| after failures).
func BenchmarkT4Alg3NoCF(b *testing.B) { benchTable(b, experiments.T4Alg3NoCF) }

// BenchmarkT5NonAnonCrossover measures the §7.3 min{lg|V|, lg|I|} result.
func BenchmarkT5NonAnonCrossover(b *testing.B) { benchTable(b, experiments.T5Crossover) }

// BenchmarkT6HalfACLowerBound runs the Theorem 6 pigeonhole + composition.
func BenchmarkT6HalfACLowerBound(b *testing.B) { benchTable(b, experiments.T6HalfACLowerBound) }

// BenchmarkT7NoCFLowerBound runs the Theorem 7 non-anonymous search.
func BenchmarkT7NoCFLowerBound(b *testing.B) { benchTable(b, experiments.T7NonAnonLowerBound) }

// BenchmarkT8MajHalfGap runs the majority/half single-message separation.
func BenchmarkT8MajHalfGap(b *testing.B) { benchTable(b, experiments.T8MajHalfGap) }

// BenchmarkT9Impossibility runs the Theorem 4/8/9 constructions.
func BenchmarkT9Impossibility(b *testing.B) { benchTable(b, experiments.T9Impossibility) }

// BenchmarkA1NoVetoAblation runs the veto-phase ablation.
func BenchmarkA1NoVetoAblation(b *testing.B) { benchTable(b, experiments.A1NoVetoAblation) }

// BenchmarkA2LossRateSweep runs the empirical-loss-rate sweep.
func BenchmarkA2LossRateSweep(b *testing.B) { benchTable(b, experiments.A2LossRateSweep) }

// BenchmarkA3Substrates measures the backoff and round-sync substrates.
func BenchmarkA3Substrates(b *testing.B) { benchTable(b, experiments.A3Substrates) }

// BenchmarkM1MultihopFlood measures the multihop flooding extension.
func BenchmarkM1MultihopFlood(b *testing.B) { benchTable(b, experiments.M1MultihopFlood) }

// --- micro-benchmarks of the simulator and library ---

// sweepParallelScenarios is the fixed grid BenchmarkSweepParallel executes:
// Algorithm 2 across network sizes × loss rates × independently seeded
// trials, decisions-only — the experiment-sweep hot path.
func sweepParallelScenarios() []sim.Scenario {
	domain := valueset.MustDomain(1 << 16)
	base := sim.Scenario{
		Algorithm: sim.AlgBitByBit,
		Detector:  detector.ZeroOAC,
		Race:      10,
		Domain:    domain.Size,
		CM:        sim.CMWakeUp,
		Stable:    10,
		ECFRound:  10,
		Loss:      sim.LossProbabilistic,
		MaxRounds: 4000,
		Trace:     engine.TraceDecisionsOnly,
	}
	sizeAxis := make([]sim.Mutation, 0, 3)
	for _, n := range []int{4, 8, 16} {
		values := make([]model.Value, n)
		for i := range values {
			values[i] = model.Value(uint64(i*7919+1) % domain.Size)
		}
		sizeAxis = append(sizeAxis, func(s *sim.Scenario) { s.Values = values })
	}
	lossAxis := make([]sim.Mutation, 0, 3)
	for _, p := range []float64{0.2, 0.35, 0.5} {
		lossAxis = append(lossAxis, func(s *sim.Scenario) { s.LossP = p })
	}
	return sim.NewSweep(base).Seed(1).Axis(sizeAxis...).Axis(lossAxis...).Trials(8).Scenarios()
}

// BenchmarkSweepParallel prices the parallel sweep runner against the
// sequential path on a fixed 72-scenario grid. The workers=1 case IS the
// sequential path (the runner inlines it with no goroutines); at
// GOMAXPROCS >= 4 the pooled case should show >= 2x wall-clock speedup.
// Results are byte-identical across worker counts (asserted by the sim
// package's determinism tests), so this measures pure scheduling gain.
func BenchmarkSweepParallel(b *testing.B) {
	scenarios := sweepParallelScenarios()
	workerCounts := []int{1}
	if w := stdruntime.GOMAXPROCS(0); w > 1 {
		if w > 4 {
			workerCounts = append(workerCounts, 4)
		}
		workerCounts = append(workerCounts, w)
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			r := sim.Runner{Workers: w}
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				results, err := r.Sweep(scenarios)
				if err != nil {
					b.Fatal(err)
				}
				for k := range results {
					if !results[k].AllDecided {
						b.Fatalf("scenario %d undecided", k)
					}
				}
			}
			b.ReportMetric(float64(len(scenarios))*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkSweepJSONL prices the streaming result path: the same fixed
// grid as BenchmarkSweepParallel, once collected in memory (Sweep) and once
// streamed through the zero-steady-state-allocation JSONL sink
// (SweepTo + internal/sink). The allocs/op delta between the two
// sub-benchmarks is the full cost JSONL streaming adds per sweep — the
// per-round engine hot path allocates nothing extra (also asserted by
// TestJSONLConsumeSteadyStateAllocs in internal/sink).
func BenchmarkSweepJSONL(b *testing.B) {
	scenarios := sweepParallelScenarios()
	params := make([]sink.Params, len(scenarios))
	for i, s := range scenarios {
		params[i] = sink.ParamsOf(s)
	}
	b.Run("memory", func(b *testing.B) {
		r := sim.Runner{Workers: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := r.Sweep(scenarios); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("jsonl", func(b *testing.B) {
		j := sink.NewJSONL(io.Discard)
		j.Exp = "bench"
		j.Params = func(i int) sink.Params { return params[i] }
		r := sim.Runner{Workers: 1}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if err := r.SweepTo(scenarios, j); err != nil {
				b.Fatal(err)
			}
		}
		if err := j.Flush(); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkReplayRender prices render-without-rerun (internal/replay): the
// "render" sub-benchmark reproduces the full A2 table from recorded results
// alone — grid re-expansion, merge guards, fingerprint verification, and
// rendering, but not one engine round — while "resimulate" regenerates the
// same table by running the grid. Render must be at least an order of
// magnitude cheaper: that gap is what makes re-rendering a month-old
// multi-machine run from its merged JSONL effectively free.
func BenchmarkReplayRender(b *testing.B) {
	e, ok := experiments.GridExperimentByName("A2")
	if !ok {
		b.Fatal("no A2 grid experiment")
	}
	scenarios, _, err := e.Build()
	if err != nil {
		b.Fatal(err)
	}
	results, err := sim.Runner{Workers: 1}.Sweep(scenarios)
	if err != nil {
		b.Fatal(err)
	}
	records := make([]sink.Record, len(results))
	for i, res := range results {
		records[i] = sink.RecordOf("A2", sink.ParamsOf(scenarios[i]), res)
	}
	b.Run("render", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			table, err := replay.RenderExperiment("A2", records)
			if err != nil {
				b.Fatal(err)
			}
			if !table.Pass {
				b.Fatalf("replayed table failed:\n%s", table)
			}
		}
	})
	b.Run("resimulate", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			table, err := e.Run()
			if err != nil {
				b.Fatal(err)
			}
			if !table.Pass {
				b.Fatalf("resimulated table failed:\n%s", table)
			}
		}
	})
}

// BenchmarkEngineRoundThroughput measures raw simulated rounds per second
// in the deterministic engine (Algorithm 2, lossy channel) across network
// sizes, trace modes, and delivery worker counts. The decisions-only
// variants are the experiment sweep hot path; the full variants price the
// columnar trace arena (they should cost nearly the same allocations as
// decisions-only); the w>1 variants price the sharded delivery core at
// sizes where it engages (n >= engine.DefaultDeliveryMinProcs — on a
// single-core host they measure pure barrier overhead, the speedup shows at
// GOMAXPROCS >= 4). ReportAllocs tracks the allocation budget per run (256
// rounds), so allocs/op ÷ 256 is the steady-state allocs/round.
func BenchmarkEngineRoundThroughput(b *testing.B) {
	benchRoundMatrix(b, false, []int{8, 64, 256, 1024})
}

// BenchmarkRuntimeRoundThroughput is the goroutine runtime counterpart,
// quantifying the cost of the channel barrier per round.
func BenchmarkRuntimeRoundThroughput(b *testing.B) {
	benchRoundMatrix(b, true, []int{8, 1024})
}

func benchRoundMatrix(b *testing.B, goroutines bool, sizes []int) {
	b.Helper()
	workerCounts := []int{1}
	if w := stdruntime.GOMAXPROCS(0); w > 1 {
		workerCounts = append(workerCounts, w)
	} else {
		// Single-core host: w=2 still exercises the sharded path and prices
		// its barrier; the wall-clock win needs real parallelism.
		workerCounts = append(workerCounts, 2)
	}
	for _, n := range sizes {
		for _, tm := range []struct {
			name string
			mode engine.TraceMode
		}{
			{"decisions", engine.TraceDecisionsOnly},
			{"full", engine.TraceFull},
		} {
			for _, w := range workerCounts {
				if w > 1 && n < engine.DefaultDeliveryMinProcs {
					continue // auto-off: would duplicate the w=1 measurement
				}
				b.Run(fmt.Sprintf("n=%d/%s/w=%d", n, tm.name, w), func(b *testing.B) {
					benchRounds(b, goroutines, n, tm.mode, w)
				})
			}
		}
	}
}

func benchRounds(b *testing.B, goroutines bool, n int, trace engine.TraceMode, workers int) {
	b.Helper()
	const roundsPerRun = 256
	d := valueset.MustDomain(1 << 16)
	b.ReportAllocs()
	totalRounds := 0
	for i := 0; i < b.N; i++ {
		procs := make(map[model.ProcessID]model.Automaton, n)
		initial := make(map[model.ProcessID]model.Value, n)
		for p := 1; p <= n; p++ {
			procs[model.ProcessID(p)] = core.NewAlg2(d, model.Value(p*31))
			initial[model.ProcessID(p)] = model.Value(p * 31)
		}
		cfg := engine.Config{
			Procs:           procs,
			Initial:         initial,
			Detector:        detector.New(detector.ZeroOAC, detector.WithRace(roundsPerRun+1)),
			Loss:            loss.NewProbabilistic(0.3, int64(i)),
			MaxRounds:       roundsPerRun,
			RunFullHorizon:  true,
			Trace:           trace,
			DeliveryWorkers: workers,
		}
		var (
			res *engine.Result
			err error
		)
		if goroutines {
			res, err = runtime.Run(cfg)
		} else {
			res, err = engine.Run(cfg)
		}
		if err != nil {
			b.Fatal(err)
		}
		totalRounds += res.Rounds
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalRounds), "ns/round")
}

// BenchmarkEngineScalingCurves is the multicore scaling matrix the CI
// benchmark job publishes (BENCH_pr7.json): full-trace round throughput
// over network size × seed schedule × delivery workers. DeliveryMinProcs
// is pinned to 1 so every (n, w) point actually exercises the sharded
// core — auto-off would silently fold small-n points back into w=1 — and
// the v1 rows price what the sequential schedule leaves on the table: v1
// plans are drawn outside the pool (order-dependent Rng), v2 plans shard
// with delivery. On a single-core host all w>1 points measure pure barrier
// overhead; the scaling shows from GOMAXPROCS >= 4.
func BenchmarkEngineScalingCurves(b *testing.B) {
	const roundsPerRun = 256
	d := valueset.MustDomain(1 << 16)
	for _, n := range []int{64, 256, 1024} {
		for _, sched := range []int{1, 2} {
			for _, w := range []int{1, 2, 4, 8} {
				b.Run(fmt.Sprintf("n=%d/sched=v%d/w=%d", n, sched, w), func(b *testing.B) {
					b.ReportAllocs()
					totalRounds := 0
					for i := 0; i < b.N; i++ {
						procs := make(map[model.ProcessID]model.Automaton, n)
						initial := make(map[model.ProcessID]model.Value, n)
						for p := 1; p <= n; p++ {
							procs[model.ProcessID(p)] = core.NewAlg2(d, model.Value(p*31))
							initial[model.ProcessID(p)] = model.Value(p * 31)
						}
						var adv loss.Adversary
						if sched == 2 {
							adv = loss.NewProbabilisticV2(0.3, int64(i))
						} else {
							adv = loss.NewProbabilistic(0.3, int64(i))
						}
						res, err := engine.Run(engine.Config{
							Procs:            procs,
							Initial:          initial,
							Detector:         detector.New(detector.ZeroOAC, detector.WithRace(roundsPerRun+1)),
							Loss:             adv,
							MaxRounds:        roundsPerRun,
							RunFullHorizon:   true,
							Trace:            engine.TraceFull,
							DeliveryWorkers:  w,
							DeliveryMinProcs: 1,
						})
						if err != nil {
							b.Fatal(err)
						}
						totalRounds += res.Rounds
					}
					b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(totalRounds), "ns/round")
				})
			}
		}
	}
}

// BenchmarkAlg2Decide measures end-to-end time-to-consensus by |V|.
func BenchmarkAlg2Decide(b *testing.B) {
	for _, size := range []uint64{16, 1 << 16, 1 << 32} {
		b.Run(valueSizeName(size), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				report, err := Config{
					Algorithm: AlgorithmBitByBit,
					Values:    []Value{1, Value(size - 1), Value(size / 2)},
					Domain:    size,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				rounds = report.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

// BenchmarkAlg3Decide measures the no-ECF tree walk by |V|.
func BenchmarkAlg3Decide(b *testing.B) {
	for _, size := range []uint64{16, 1 << 16, 1 << 32} {
		b.Run(valueSizeName(size), func(b *testing.B) {
			rounds := 0
			for i := 0; i < b.N; i++ {
				report, err := Config{
					Algorithm: AlgorithmTreeWalk,
					Values:    []Value{1, Value(size - 1), Value(size / 2)},
					Domain:    size,
					Loss:      LossDrop,
				}.Run()
				if err != nil {
					b.Fatal(err)
				}
				rounds = report.Rounds
			}
			b.ReportMetric(float64(rounds), "rounds")
		})
	}
}

func valueSizeName(size uint64) string {
	switch {
	case size >= 1<<30:
		return "V=2^32"
	case size >= 1<<15:
		return "V=2^16"
	default:
		return "V=16"
	}
}

// BenchmarkMultisetUnion measures the receive-set workhorse.
func BenchmarkMultisetUnion(b *testing.B) {
	x := multiset.New[model.Message]()
	y := multiset.New[model.Message]()
	for i := 0; i < 32; i++ {
		x.Add(model.Message{Kind: model.KindEstimate, Value: model.Value(i)})
		y.Add(model.Message{Kind: model.KindVote, Value: model.Value(i)})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if x.Union(y).Len() != 64 {
			b.Fatal("union wrong")
		}
	}
}

// BenchmarkDetectorAdvise measures per-advice overhead across classes.
func BenchmarkDetectorAdvise(b *testing.B) {
	for _, class := range []detector.Class{detector.AC, detector.HalfAC, detector.ZeroOAC} {
		b.Run(class.Name, func(b *testing.B) {
			d := detector.New(class, detector.WithRace(100))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				d.Advise(i%200+1, 1, 8, i%9)
			}
		})
	}
}
