package adhocconsensus

import "math/rand"

// newRng returns a deterministic generator: every random component of a run
// derives from Config.Seed, so runs are reproducible.
func newRng(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
