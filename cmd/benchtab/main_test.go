package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"T8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunLowercaseID(t *testing.T) {
	if err := run([]string{"t8"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"T99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}
