// Command benchtab regenerates every table of EXPERIMENTS.md: the Figure-1
// solvability matrix, the termination-bound measurements for Theorems 1–3
// and §7.3, the executable lower bounds (Theorems 4, 6, 7, 8, 9), and the
// ablations. Run with no arguments for all tables, or name experiments:
//
//	benchtab                # everything
//	benchtab T3 T8 A1       # a subset
//	benchtab -workers 8 T2  # sweep on 8 workers (default GOMAXPROCS)
//
// Every experiment is a declarative scenario grid executed by the parallel
// sweep runner (internal/sim); tables are byte-identical for any -workers
// value. The tables are produced by the same internal/experiments code the
// test suite and the bench harness use.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"adhocconsensus/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchtab:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchtab", flag.ContinueOnError)
	workers := fs.Int("workers", 0, "worker-pool size for scenario sweeps (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.SetWorkers(*workers)

	type experiment struct {
		id string
		fn func() (*experiments.Table, error)
	}
	all := []experiment{
		{"T1", experiments.T1ClassMatrix},
		{"T2", experiments.T2Alg1Termination},
		{"T3", experiments.T3Alg2ValueSweep},
		{"T4", experiments.T4Alg3NoCF},
		{"T5", experiments.T5Crossover},
		{"T6", experiments.T6HalfACLowerBound},
		{"T7", experiments.T7NonAnonLowerBound},
		{"T8", experiments.T8MajHalfGap},
		{"T9", experiments.T9Impossibility},
		{"A1", experiments.A1NoVetoAblation},
		{"A2", experiments.A2LossRateSweep},
		{"A3", experiments.A3Substrates},
		{"M1", experiments.M1MultihopFlood},
	}
	want := make(map[string]bool, fs.NArg())
	for _, a := range fs.Args() {
		want[strings.ToUpper(a)] = true
	}
	ran := 0
	failed := 0
	for _, e := range all {
		if len(want) > 0 && !want[e.id] {
			continue
		}
		table, err := e.fn()
		if err != nil {
			return fmt.Errorf("%s: %w", e.id, err)
		}
		fmt.Println(table)
		ran++
		if !table.Pass {
			failed++
		}
	}
	if ran == 0 {
		return fmt.Errorf("no experiment matches %v (valid: T1..T9, A1..A3, M1)", fs.Args())
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their internal checks", failed)
	}
	return nil
}
