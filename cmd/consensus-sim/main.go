// Command consensus-sim runs one consensus execution and prints the
// decision, round count, and (optionally) the full round-by-round trace.
// With -trials N it instead sweeps N independently seeded trials of the
// same configuration on a parallel worker pool (-parallel, default
// GOMAXPROCS) and prints aggregate statistics; per-trial seeds derive
// deterministically from -seed, so the sweep output is identical for any
// worker count.
//
// Examples:
//
//	consensus-sim -alg bitbybit -values 3,7,7,1 -domain 16
//	consensus-sim -alg treewalk -values 12,60,33 -domain 64 -loss drop -trace
//	consensus-sim -alg propose -values 5,9 -loss prob -p 0.4 -cst 12 -seed 7
//	consensus-sim -alg leaderrelay -values 100,200,300 -domain 1048576 -idspace 16
//	consensus-sim -alg bitbybit -values 3,7,7,1 -loss prob -p 0.4 -trials 1000 -parallel 8
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"adhocconsensus"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("consensus-sim", flag.ContinueOnError)
	var (
		algName   = fs.String("alg", "bitbybit", "algorithm: propose | bitbybit | treewalk | leaderrelay")
		valuesCSV = fs.String("values", "3,7,7,1", "comma-separated initial values, one per process")
		domain    = fs.Uint64("domain", 0, "|V| (default: max value + 1)")
		idSpace   = fs.Uint64("idspace", 0, "|I| for leaderrelay (default 2^48)")
		lossName  = fs.String("loss", "none", "loss model: none | prob | capture | drop")
		lossP     = fs.Float64("p", 0.3, "loss probability for prob/capture")
		cst       = fs.Int("cst", 1, "communication stabilization round (ECF, wake-up, accuracy)")
		fpRate    = fs.Float64("fp", 0, "detector false positive rate before stabilization")
		backoff   = fs.Bool("backoff", false, "use the backoff contention manager instead of a pinned wake-up service")
		seed      = fs.Int64("seed", 1, "seed for all randomized components")
		maxRounds = fs.Int("rounds", 100000, "maximum rounds to execute")
		trace     = fs.Bool("trace", false, "print the full execution trace")
		jsonOut   = fs.Bool("json", false, "dump the execution as JSON to stdout")
		gor       = fs.Bool("goroutines", false, "run the goroutine-per-process runtime")
		trials    = fs.Int("trials", 1, "run this many independently seeded trials and print aggregate stats")
		parallel  = fs.Int("parallel", 0, "worker-pool size for -trials (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	var alg adhocconsensus.Algorithm
	switch strings.ToLower(*algName) {
	case "propose", "alg1":
		alg = adhocconsensus.AlgorithmPropose
	case "bitbybit", "alg2":
		alg = adhocconsensus.AlgorithmBitByBit
	case "treewalk", "alg3":
		alg = adhocconsensus.AlgorithmTreeWalk
	case "leaderrelay", "nonanon":
		alg = adhocconsensus.AlgorithmLeaderRelay
	default:
		return fmt.Errorf("unknown algorithm %q", *algName)
	}

	var values []adhocconsensus.Value
	for _, part := range strings.Split(*valuesCSV, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			return fmt.Errorf("bad value %q: %w", part, err)
		}
		values = append(values, adhocconsensus.Value(v))
	}

	var lossMode adhocconsensus.LossMode
	switch strings.ToLower(*lossName) {
	case "none":
		lossMode = adhocconsensus.LossNone
	case "prob", "probabilistic":
		lossMode = adhocconsensus.LossProbabilistic
	case "capture":
		lossMode = adhocconsensus.LossCapture
	case "drop":
		lossMode = adhocconsensus.LossDrop
	default:
		return fmt.Errorf("unknown loss model %q", *lossName)
	}

	cfg := adhocconsensus.Config{
		Algorithm:         alg,
		Values:            values,
		Domain:            *domain,
		IDSpace:           *idSpace,
		Loss:              lossMode,
		LossP:             *lossP,
		ECFRound:          *cst,
		Stable:            *cst,
		DetectorRace:      *cst,
		FalsePositiveRate: *fpRate,
		Seed:              *seed,
		MaxRounds:         *maxRounds,
		UseGoroutines:     *gor,
	}
	if *backoff {
		cfg.Contention = adhocconsensus.ContentionBackoff
	}
	if alg == adhocconsensus.AlgorithmTreeWalk {
		cfg.ECFRound = 0 // the tree walk needs no delivery guarantee
	}

	if *trials > 1 {
		if *trace || *jsonOut {
			return fmt.Errorf("-trace and -json require a single run (drop -trials)")
		}
		st, err := cfg.RunTrials(*trials, *parallel)
		if err != nil {
			return err
		}
		fmt.Printf("algorithm : %v\n", alg)
		fmt.Printf("processes : %d\n", len(values))
		fmt.Printf("trials    : %d\n", st.Trials)
		fmt.Printf("decided   : %d/%d\n", st.Decided, st.Trials)
		fmt.Printf("rounds    : min=%d med=%g mean=%.4g p95=%g max=%d\n",
			st.MinRounds, st.MedianRounds, st.MeanRounds, st.P95Rounds, st.MaxRounds)
		for _, va := range sortedAgreements(st.Agreements) {
			fmt.Printf("  agreed on %d in %d trial(s)\n", uint64(va.value), va.trials)
		}
		if st.AgreementViolations > 0 {
			fmt.Printf("  AGREEMENT VIOLATED in %d trial(s)\n", st.AgreementViolations)
		}
		return nil
	}

	report, err := cfg.Run()
	if err != nil {
		return err
	}
	fmt.Printf("algorithm : %v\n", alg)
	fmt.Printf("processes : %d\n", len(values))
	fmt.Printf("rounds    : %d\n", report.Rounds)
	fmt.Printf("decided   : %v\n", report.Decided)
	if report.Decided {
		fmt.Printf("agreed on : %d\n", uint64(report.Agreed))
	}
	for id := 1; id <= len(values); id++ {
		if d, ok := report.Decisions[adhocconsensus.ProcessID(id)]; ok {
			fmt.Printf("  p%d decided %d at round %d\n", id, uint64(d.Value), d.Round)
		} else {
			fmt.Printf("  p%d undecided\n", id)
		}
	}
	if *trace {
		fmt.Println("\ntrace:")
		fmt.Print(report.Execution.String())
	}
	if *jsonOut {
		if err := report.Execution.WriteJSON(os.Stdout); err != nil {
			return fmt.Errorf("json export: %w", err)
		}
	}
	return nil
}

// valueCount is one agreement-histogram entry.
type valueCount struct {
	value  adhocconsensus.Value
	trials int
}

// sortedAgreements orders the agreement histogram by value for stable
// output.
func sortedAgreements(m map[adhocconsensus.Value]int) []valueCount {
	out := make([]valueCount, 0, len(m))
	for v, n := range m {
		out = append(out, valueCount{v, n})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].value < out[j].value })
	return out
}
