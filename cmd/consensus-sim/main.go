// Command consensus-sim runs one consensus execution and prints the
// decision, round count, and (optionally) the full round-by-round trace.
// With -trials N it instead sweeps N independently seeded trials of the
// same configuration on a parallel worker pool (-parallel, default
// GOMAXPROCS) and prints aggregate statistics plus per-trial seed
// provenance: the derived seed of the slowest trial and of every
// undecided/violating trial, so a single anomalous trial can be re-run
// standalone by passing that seed to a single run. Per-trial seeds derive
// deterministically from -seed, so the sweep output is identical for any
// worker count.
//
// Examples:
//
//	consensus-sim -alg bitbybit -values 3,7,7,1 -domain 16
//	consensus-sim -alg treewalk -values 12,60,33 -domain 64 -loss drop -trace
//	consensus-sim -alg propose -values 5,9 -loss prob -p 0.4 -cst 12 -seed 7
//	consensus-sim -alg leaderrelay -values 100,200,300 -domain 1048576 -idspace 16
//	consensus-sim -alg bitbybit -values 3,7,7,1 -loss prob -p 0.4 -trials 1000 -parallel 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "consensus-sim:", err)
		os.Exit(1)
	}
}

// trialCollector captures the per-trial stream for the provenance report.
type trialCollector []adhocconsensus.TrialResult

func (c *trialCollector) Consume(r adhocconsensus.TrialResult) error {
	*c = append(*c, r)
	return nil
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("consensus-sim", flag.ContinueOnError)
	cf := cli.RegisterConfig(fs)
	var (
		trace    = fs.Bool("trace", false, "print the full execution trace")
		jsonOut  = fs.Bool("json", false, "dump the execution as JSON to stdout")
		gor      = fs.Bool("goroutines", false, "run the goroutine-per-process runtime")
		trials   = fs.Int("trials", 1, "run this many independently seeded trials and print aggregate stats")
		parallel = fs.Int("parallel", 0, "worker-pool size for -trials (0 = GOMAXPROCS)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg, err := cf.Config()
	if err != nil {
		return err
	}
	cfg.UseGoroutines = *gor

	if *trials > 1 {
		if *trace || *jsonOut {
			return fmt.Errorf("-trace and -json require a single run (drop -trials)")
		}
		// One collection serves both the statistics and the provenance
		// report (RunTrials would keep a second internal copy).
		var collected trialCollector
		if err := cfg.StreamTrials(*trials, *parallel, 0, 1, &collected); err != nil {
			return err
		}
		cli.PrintTrialStats(out, cfg.Algorithm, len(cfg.Values), adhocconsensus.TrialStatsOf(collected))
		cli.PrintSeedProvenance(out, collected)
		return nil
	}

	report, err := cfg.Run()
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "algorithm : %v\n", cfg.Algorithm)
	fmt.Fprintf(out, "processes : %d\n", len(cfg.Values))
	fmt.Fprintf(out, "rounds    : %d\n", report.Rounds)
	fmt.Fprintf(out, "decided   : %v\n", report.Decided)
	if report.Decided {
		fmt.Fprintf(out, "agreed on : %d\n", uint64(report.Agreed))
	}
	for id := 1; id <= len(cfg.Values); id++ {
		if d, ok := report.Decisions[adhocconsensus.ProcessID(id)]; ok {
			fmt.Fprintf(out, "  p%d decided %d at round %d\n", id, uint64(d.Value), d.Round)
		} else {
			fmt.Fprintf(out, "  p%d undecided\n", id)
		}
	}
	if *trace {
		fmt.Fprintln(out, "\ntrace:")
		fmt.Fprint(out, report.Execution.String())
	}
	if *jsonOut {
		if err := report.Execution.WriteJSON(out); err != nil {
			return fmt.Errorf("json export: %w", err)
		}
	}
	return nil
}
