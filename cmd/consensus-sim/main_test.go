package main

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run(nil, io.Discard); err != nil {
		t.Fatalf("default run failed: %v", err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	tests := [][]string{
		{"-alg", "propose", "-values", "5,9"},
		{"-alg", "bitbybit", "-values", "5,9", "-domain", "16"},
		{"-alg", "treewalk", "-values", "5,9", "-domain", "16", "-loss", "drop"},
		{"-alg", "leaderrelay", "-values", "5,9", "-domain", "1048576", "-idspace", "16"},
	}
	for _, args := range tests {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunFlagVariants(t *testing.T) {
	tests := [][]string{
		{"-values", "1,2", "-loss", "prob", "-p", "0.3", "-cst", "8", "-seed", "3"},
		{"-values", "1,2", "-loss", "capture", "-fp", "0.2", "-cst", "8"},
		{"-values", "1,2", "-backoff", "-rounds", "5000"},
		{"-values", "1,2", "-trace"},
		{"-values", "1,2", "-json"},
		{"-values", "1,2", "-goroutines"},
		{"-values", "3,7,7,1", "-loss", "prob", "-p", "0.4", "-trials", "20"},
		{"-values", "3,7,7,1", "-trials", "8", "-parallel", "2"},
	}
	for _, args := range tests {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args, io.Discard); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown algorithm", []string{"-alg", "paxos"}},
		{"unknown loss", []string{"-loss", "wormhole"}},
		{"bad value", []string{"-values", "1,x"}},
		{"trace needs single run", []string{"-values", "1,2", "-trials", "5", "-trace"}},
		{"json needs single run", []string{"-values", "1,2", "-trials", "5", "-json"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, io.Discard); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}

// TestTrialsSeedProvenance is the re-runnability contract of the -trials
// summary: the report names the slowest trial's derived seed, and a single
// run with exactly that seed reproduces the trial's round count.
func TestTrialsSeedProvenance(t *testing.T) {
	var buf strings.Builder
	args := []string{"-alg", "bitbybit", "-values", "3,7,7,1", "-domain", "16",
		"-loss", "prob", "-p", "0.4", "-trials", "25", "-seed", "7"}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "seeds     :") {
		t.Fatalf("no seed-provenance block in:\n%s", out)
	}
	var trial, rounds int
	var seed int64
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "slowest") {
			if _, err := fmt.Sscanf(strings.TrimSpace(line), "slowest   : trial %d (%d rounds) seed %d",
				&trial, &rounds, &seed); err != nil {
				t.Fatalf("unparseable slowest line %q: %v", line, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no slowest line in:\n%s", out)
	}

	// Re-run the flagged trial standalone with its derived seed: same
	// environment flags, the trial seed, no -trials.
	buf.Reset()
	single := []string{"-alg", "bitbybit", "-values", "3,7,7,1", "-domain", "16",
		"-loss", "prob", "-p", "0.4", "-seed", strconv.FormatInt(seed, 10)}
	if err := run(single, &buf); err != nil {
		t.Fatal(err)
	}
	want := "rounds    : " + strconv.Itoa(rounds) + "\n"
	if !strings.Contains(buf.String(), want) {
		t.Fatalf("standalone re-run of trial %d did not reproduce %d rounds:\n%s", trial, rounds, buf.String())
	}
}
