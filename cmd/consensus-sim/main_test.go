package main

import (
	"strings"
	"testing"
)

func TestRunDefaults(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatalf("default run failed: %v", err)
	}
}

func TestRunAllAlgorithms(t *testing.T) {
	tests := [][]string{
		{"-alg", "propose", "-values", "5,9"},
		{"-alg", "bitbybit", "-values", "5,9", "-domain", "16"},
		{"-alg", "treewalk", "-values", "5,9", "-domain", "16", "-loss", "drop"},
		{"-alg", "leaderrelay", "-values", "5,9", "-domain", "1048576", "-idspace", "16"},
	}
	for _, args := range tests {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunFlagVariants(t *testing.T) {
	tests := [][]string{
		{"-values", "1,2", "-loss", "prob", "-p", "0.3", "-cst", "8", "-seed", "3"},
		{"-values", "1,2", "-loss", "capture", "-fp", "0.2", "-cst", "8"},
		{"-values", "1,2", "-backoff", "-rounds", "5000"},
		{"-values", "1,2", "-trace"},
		{"-values", "1,2", "-json"},
		{"-values", "1,2", "-goroutines"},
		{"-values", "3,7,7,1", "-loss", "prob", "-p", "0.4", "-trials", "20"},
		{"-values", "3,7,7,1", "-trials", "8", "-parallel", "2"},
	}
	for _, args := range tests {
		t.Run(strings.Join(args, " "), func(t *testing.T) {
			if err := run(args); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	tests := []struct {
		name string
		args []string
	}{
		{"unknown algorithm", []string{"-alg", "paxos"}},
		{"unknown loss", []string{"-loss", "wormhole"}},
		{"bad value", []string{"-values", "1,x"}},
		{"trace needs single run", []string{"-values", "1,2", "-trials", "5", "-trace"}},
		{"json needs single run", []string{"-values", "1,2", "-trials", "5", "-json"}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}
