package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adhocconsensus/internal/jobs"
	"adhocconsensus/internal/telemetry"
)

// syncBuffer lets the daemon goroutine write info output while the test
// reads it.
type syncBuffer struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// startDaemon runs the daemon main loop on a loopback port and returns its
// base URL plus a shutdown function that triggers the drain path (the
// in-process face of SIGTERM) and returns run's error.
func startDaemon(t *testing.T, dir string, extraArgs ...string) (baseURL string, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out := &syncBuffer{}
	errCh := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-dir", dir}, extraArgs...)
	go func() { errCh <- run(ctx, args, out) }()

	// The daemon prints its bound address once the listener is up.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if s := out.String(); strings.Contains(s, "on http://") {
			addr := strings.TrimPrefix(s[strings.Index(s, "on http://"):], "on http://")
			addr = strings.Fields(addr)[0]
			baseURL = "http://" + addr
			break
		}
		select {
		case err := <-errCh:
			t.Fatalf("daemon exited before listening: %v\n%s", err, out.String())
		default:
		}
		if time.Now().After(deadline) {
			t.Fatalf("daemon never listened:\n%s", out.String())
		}
		time.Sleep(2 * time.Millisecond)
	}
	return baseURL, func() error {
		cancel()
		select {
		case err := <-errCh:
			return err
		case <-time.After(30 * time.Second):
			t.Fatal("daemon did not drain within 30s")
			return nil
		}
	}
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string, v any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if v != nil {
		if err := json.Unmarshal(data, v); err != nil {
			t.Fatalf("bad JSON from %s: %v\n%s", url, err, data)
		}
	}
	return resp
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, baseURL string, id int64, timeout time.Duration) jobs.Status {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		var st jobs.Status
		getJSON(t, fmt.Sprintf("%s/jobs/%d", baseURL, id), &st)
		if st.State.Terminal() {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %d stuck in %s", id, st.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonLifecycle drives the full HTTP surface: submit, dedup, status
// with the run report attached, list, metrics on the same listener, cancel
// of a queued job, and a clean drain — with the finished job's bytes
// byte-identical to a direct uninterrupted execution of the same spec.
func TestDaemonLifecycle(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)

	// Reference bytes: the same spec executed directly, to a different file.
	ref := jobs.Spec{
		Trials: 30,
		Config: []string{"-alg", "propose", "-seed", "11"},
		Out:    filepath.Join(dir, "ref.jsonl"),
	}
	if _, err := jobs.Execute(context.Background(), ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref.Out)
	if err != nil {
		t.Fatal(err)
	}

	spec := ref
	spec.Out = filepath.Join(dir, "job.jsonl")
	resp, body := postJSON(t, baseURL+"/jobs", spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %s\n%s", resp.Status, body)
	}
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	final := waitDone(t, baseURL, st.ID, 30*time.Second)
	if final.State != jobs.StateDone || final.ExitCode != 0 {
		t.Fatalf("job finished %+v, want done/0", final)
	}
	if final.Report == nil || final.Report.Status != telemetry.StatusOK || final.Report.Trials.Executed != 30 {
		t.Fatalf("status document carries no usable run report: %+v", final.Report)
	}
	got, err := os.ReadFile(spec.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("daemon job bytes differ from a direct run")
	}

	// An invalid spec is refused with a reason, not quarantined later.
	respBad, bodyBad := postJSON(t, baseURL+"/jobs", jobs.Spec{Out: "x"})
	if respBad.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("bad spec: %s\n%s", respBad.Status, bodyBad)
	}

	// List shows the job; /metrics shares the listener and carries the jobs
	// counters; unknown IDs 404.
	var list []jobs.Status
	getJSON(t, baseURL+"/jobs", &list)
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list: %+v", list)
	}
	var metrics map[string]any
	getJSON(t, baseURL+"/metrics", &metrics)
	if v, ok := metrics["jobs.completed"].(float64); !ok || v < 1 {
		t.Fatalf("metrics jobs.completed = %v", metrics["jobs.completed"])
	}
	if resp := getJSON(t, baseURL+"/jobs/999", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job: %s", resp.Status)
	}
	var health map[string]any
	getJSON(t, baseURL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz: %+v", health)
	}

	if err := shutdown(); err != nil {
		t.Fatalf("clean drain returned %v", err)
	}
}

// TestDaemonCancelEndpoint cancels a queued job over HTTP.
func TestDaemonCancelEndpoint(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)

	slow := jobs.Spec{
		Trials: 20000,
		Config: []string{"-alg", "bitbybit", "-loss", "prob", "-p", "0.4", "-seed", "7"},
		Out:    filepath.Join(dir, "slow.jsonl"),
	}
	_, body := postJSON(t, baseURL+"/jobs", slow)
	var running jobs.Status
	if err := json.Unmarshal(body, &running); err != nil {
		t.Fatal(err)
	}
	// A duplicate of the in-flight spec coalesces: same job ID back. (The
	// slow job runs ~0.5s, so it cannot have finished yet.)
	_, body = postJSON(t, baseURL+"/jobs", slow)
	var dup jobs.Status
	if err := json.Unmarshal(body, &dup); err != nil {
		t.Fatal(err)
	}
	if dup.ID != running.ID {
		t.Fatalf("duplicate got job %d, want coalesce onto %d", dup.ID, running.ID)
	}
	queued := slow
	queued.Out = filepath.Join(dir, "queued.jsonl")
	_, body = postJSON(t, baseURL+"/jobs", queued)
	var qst jobs.Status
	if err := json.Unmarshal(body, &qst); err != nil {
		t.Fatal(err)
	}

	resp, cbody := postJSON(t, fmt.Sprintf("%s/jobs/%d/cancel", baseURL, qst.ID), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: %s\n%s", resp.Status, cbody)
	}
	if st := waitDone(t, baseURL, qst.ID, 10*time.Second); st.State != jobs.StateCanceled {
		t.Fatalf("canceled job finished %+v, want canceled", st)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("drain returned %v", err)
	}
}

// TestDaemonDrainAndRestartResumes is the in-process restart story: drain a
// daemon mid-job (SIGTERM's code path), start a fresh daemon over the same
// state directory, and the checkpointed job completes byte-identical to an
// uninterrupted run.
func TestDaemonDrainAndRestartResumes(t *testing.T) {
	dir := t.TempDir()
	state := filepath.Join(dir, "state")
	if err := os.Mkdir(state, 0o755); err != nil {
		t.Fatal(err)
	}

	ref := jobs.Spec{
		Trials: 20000,
		Config: []string{"-alg", "bitbybit", "-loss", "prob", "-p", "0.4", "-seed", "9"},
		Out:    filepath.Join(dir, "ref.jsonl"),
	}
	if _, err := jobs.Execute(context.Background(), ref, io.Discard); err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(ref.Out)
	if err != nil {
		t.Fatal(err)
	}

	baseURL, shutdown := startDaemon(t, state)
	spec := ref
	spec.Out = filepath.Join(dir, "job.jsonl")
	_, body := postJSON(t, baseURL+"/jobs", spec)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	// Drain once the job has durable progress.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if fi, err := os.Stat(spec.Out); err == nil && fi.Size() > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("job never wrote a record")
		}
		time.Sleep(time.Millisecond)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("drain returned %v", err)
	}

	baseURL2, shutdown2 := startDaemon(t, state)
	final := waitDone(t, baseURL2, st.ID, 60*time.Second)
	if final.State != jobs.StateDone {
		t.Fatalf("restarted job finished %+v, want done", final)
	}
	if err := shutdown2(); err != nil {
		t.Fatalf("second drain returned %v", err)
	}
	got, err := os.ReadFile(spec.Out)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("drained-and-restarted job differs from the uninterrupted run")
	}
}

// TestExitcodesFlag prints the shared table.
func TestExitcodesFlag(t *testing.T) {
	var buf bytes.Buffer
	if err := run(context.Background(), []string{"-exitcodes"}, &buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0  success", "5  clean interrupt", "sweepd"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("exit-code table missing %q:\n%s", want, buf.String())
		}
	}
}
