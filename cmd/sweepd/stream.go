// The query-and-streaming face of the daemon: the SSE event stream, the
// replay-rendered results view, and the flagged-trial drilldown. These
// handlers are strictly read-only observers of the job pipeline — they read
// the journal ring, the persisted journal, and the shard files; they never
// touch the execution path, so a watched job's output stays byte-identical
// to an unwatched one's.
package main

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"time"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/events"
	"adhocconsensus/internal/jobs"
	"adhocconsensus/internal/replay"
	"adhocconsensus/internal/sink"
)

// sseTick is how often the event stream polls the shard file for newly
// durable records and re-checks the job's state. Journal events do not wait
// on it — they stream as the subscription delivers them.
const sseTick = 150 * time.Millisecond

// sseEndGrace bounds how long the stream waits, after observing a terminal
// job state, for the closing journal events (segment/job span ends) to
// arrive before it finishes with eof.
const sseEndGrace = time.Second

// terminal reports whether a job state can no longer emit events in this
// process. Checkpointed counts: the job is parked until a restart, and a
// restarted daemon is a new process (and a new stream).
func terminal(st jobs.State) bool {
	switch st {
	case jobs.StateDone, jobs.StateQuarantined, jobs.StateCanceled, jobs.StateCheckpointed:
		return true
	}
	return false
}

// sseStream frames server-sent events onto one response. Data payloads are
// single JSONL lines (journal events, sink records) — never multi-line.
type sseStream struct {
	w  io.Writer
	fl http.Flusher
}

func (s *sseStream) event(typ string, data []byte) {
	fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", typ, bytes.TrimRight(data, "\n"))
}

func (s *sseStream) eof(state jobs.State) {
	s.event("eof", []byte(fmt.Sprintf(`{"state":%q}`, state)))
	s.fl.Flush()
}

// shardTail follows a shard file's growth, returning only complete appended
// lines — a half-written record line stays invisible until its newline
// lands. A missing file (job not started) reads as no lines; a file whose
// size shrank (a resume truncated a torn tail we never emitted) clamps the
// offset instead of re-reading.
type shardTail struct {
	path string
	off  int64
}

func (t *shardTail) read() [][]byte {
	f, err := os.Open(t.path)
	if err != nil {
		return nil
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil
	}
	size := fi.Size()
	if size <= t.off {
		if size < t.off {
			t.off = size
		}
		return nil
	}
	b := make([]byte, size-t.off)
	if _, err := io.ReadFull(io.NewSectionReader(f, t.off, size-t.off), b); err != nil {
		return nil
	}
	last := bytes.LastIndexByte(b, '\n')
	if last < 0 {
		return nil
	}
	t.off += int64(last + 1)
	return bytes.Split(b[:last], []byte("\n"))
}

// handleEvents is GET /jobs/{id}/events: one SSE connection carrying the
// job's journal events ("event: journal") and its per-trial records
// ("event: record") as they become durable, with "event: lagged" marking
// journal events the slow-consumer policy dropped and "event: eof" closing
// the stream when the job is terminal. A terminal job replays its persisted
// journal and shard file instead — subscribing after completion still
// yields the full narrative.
func handleEvents(w http.ResponseWriter, r *http.Request, sup *jobs.Supervisor, id int64, sseBuf int) {
	st, ok := sup.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusInternalServerError, fmt.Errorf("response writer cannot stream"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	s := &sseStream{w: w, fl: fl}
	tail := &shardTail{path: st.Spec.Out}

	if terminal(st.State) {
		// The live journal has moved on (or was never up); the durable
		// export next to the shard file is the record of the job's last
		// attempt.
		if evs, err := events.ReadEventsFile(st.Spec.Out + ".events.jsonl"); err == nil {
			var buf []byte
			for _, e := range evs {
				buf = events.AppendEvent(buf[:0], e)
				s.event("journal", buf)
			}
		}
		for _, line := range tail.read() {
			s.event("record", line)
		}
		s.eof(st.State)
		return
	}

	// Live: history from the ring first (admit and earlier spans the client
	// missed), then the subscription. Follow registers before it snapshots,
	// so the two overlap rather than gap; lastSeq dedupes the overlap.
	jal := events.Active()
	var snap []events.Event
	var sub *events.Subscription
	if jal != nil {
		snap, sub = jal.Follow(sseBuf)
		defer sub.Close()
	}
	var lastSeq, lastDropped uint64
	var buf []byte
	emit := func(e events.Event) {
		if e.Job != id || e.Seq <= lastSeq {
			return
		}
		lastSeq = e.Seq
		buf = events.AppendEvent(buf[:0], e)
		s.event("journal", buf)
	}
	for _, e := range snap {
		emit(e)
	}
	fl.Flush()

	subC := sub.C() // nil channel (blocks forever) when journaling is off
	tick := time.NewTicker(sseTick)
	defer tick.Stop()
	var endBy <-chan time.Time // armed when the job goes terminal
	endState := st.State
	for {
		select {
		case <-r.Context().Done():
			return
		case <-endBy:
			for _, line := range tail.read() {
				s.event("record", line)
			}
			s.eof(endState)
			return
		case e := <-subC:
			emit(e)
			for more := true; more; {
				select {
				case e := <-subC:
					emit(e)
				default:
					more = false
				}
			}
			fl.Flush()
		case <-tick.C:
			for _, line := range tail.read() {
				s.event("record", line)
			}
			if d := sub.Dropped(); d > lastDropped {
				s.event("lagged", []byte(fmt.Sprintf(`{"dropped":%d}`, d-lastDropped)))
				lastDropped = d
			}
			if cur, ok := sup.Job(id); !ok || terminal(cur.State) {
				if endBy == nil {
					if ok {
						endState = cur.State
					}
					endBy = time.After(sseEndGrace)
				}
			}
			fl.Flush()
		}
	}
}

// handleResults is GET /jobs/{id}/results: the shard file's records
// rendered through internal/replay — experiment tables and trial statistics
// without re-simulation. ?quiet collapses experiments to PASS/FAIL lines.
// Records that cannot render yet (incomplete shard of a wider sweep, no
// records durable) answer 422/404 with the reason.
func handleResults(w http.ResponseWriter, r *http.Request, sup *jobs.Supervisor, id int64) {
	st, ok := sup.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	recs, err := readShard(st.Spec.Out)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	var b bytes.Buffer
	if err := renderRecords(&b, recs, r.URL.Query().Has("quiet")); err != nil {
		writeErr(w, http.StatusUnprocessableEntity, err)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b.Bytes())
}

// handleFlagged is GET /jobs/{id}/flagged: the recorded trials worth a
// second look, selected by ?flag= (default "quarantined,undecided,
// violations" — the record-level selectors; quarantined trials carry no
// digest, which is why they are inspected here rather than re-executed by
// "sweeprun verify").
func handleFlagged(w http.ResponseWriter, r *http.Request, sup *jobs.Supervisor, id int64) {
	st, ok := sup.Job(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
		return
	}
	spec := r.URL.Query().Get("flag")
	if spec == "" {
		spec = "quarantined,undecided,violations"
	}
	sel, err := replay.ParseSelector(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	recs, err := readShard(st.Spec.Out)
	if err != nil {
		writeErr(w, http.StatusNotFound, err)
		return
	}
	type flaggedDoc struct {
		Index   int         `json:"index"`
		Reasons []string    `json:"reasons"`
		Record  sink.Record `json:"record"`
	}
	fl := replay.FlagRecords(recs, sel)
	docs := make([]flaggedDoc, 0, len(fl))
	for _, f := range fl {
		docs = append(docs, flaggedDoc{Index: f.Rec.Index, Reasons: f.Reasons, Record: f.Rec})
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"job": id, "flag": spec, "count": len(docs), "flagged": docs,
	})
}

// readShard reads a job's durable records, salvage-style: the valid prefix
// of the shard file, ignoring a torn tail a running job may be mid-write.
func readShard(path string) ([]sink.Record, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("no durable records yet: %w", err)
	}
	defer f.Close()
	recs, _, _ := sink.ReadRecordsPartial(f)
	if len(recs) == 0 {
		return nil, errors.New("no durable records yet")
	}
	return recs, nil
}

// renderRecords folds records into tables exactly as "sweeprun replay"
// does: experiment groups through replay.RenderExperiment, configuration
// sweeps through the trial-statistics printer.
func renderRecords(out io.Writer, recs []sink.Record, quiet bool) error {
	run := replay.Group(recs)
	for _, name := range run.Order {
		group := run.Groups[name]
		if name == "trials" {
			if err := renderTrials(out, group, quiet); err != nil {
				return fmt.Errorf("trials: %w", err)
			}
			continue
		}
		table, err := replay.RenderExperiment(name, group)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if quiet {
			verdict := "PASS"
			if !table.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(out, "%s: %s\n", name, verdict)
		} else {
			fmt.Fprintln(out, table)
		}
	}
	return nil
}

// renderTrials renders a configuration-sweep group's statistics — the
// daemon-side twin of sweeprun's mergeTrials (kept in lockstep by the
// handler test's comparison against "sweeprun replay" output).
func renderTrials(out io.Writer, recs []sink.Record, quiet bool) error {
	results, err := sink.Merge(recs)
	if err != nil {
		return err
	}
	if _, err := sink.UniformSeedSchedule(recs); err != nil {
		return err
	}
	fp := recs[0].Fingerprint
	for _, rec := range recs {
		if rec.Fingerprint != fp {
			return fmt.Errorf("trial %d fingerprint %s differs from %s — shards from different configurations",
				rec.Index, rec.Fingerprint, fp)
		}
	}
	trs := make([]adhocconsensus.TrialResult, len(results))
	for i, res := range results {
		trs[i] = adhocconsensus.TrialResult{
			Trial:             res.Index,
			Seed:              res.Seed,
			Fingerprint:       fp,
			Rounds:            res.Rounds,
			Decided:           res.AllDecided,
			Decisions:         res.Decisions,
			DecidedValues:     res.DecidedValues,
			LastDecisionRound: res.LastDecisionRound,
			AgreementOK:       res.AgreementOK,
			ValidityOK:        res.ValidityOK,
			TerminationOK:     res.TerminationOK,
		}
	}
	st := adhocconsensus.TrialStatsOf(trs)
	if quiet {
		fmt.Fprintf(out, "trials: %d merged, %d decided, %d violation(s)\n",
			st.Trials, st.Decided, st.AgreementViolations)
		return nil
	}
	alg, err := cli.ParseAlgorithm(recs[0].Params.Algorithm)
	if err != nil {
		return fmt.Errorf("records carry no usable algorithm param: %w", err)
	}
	cli.PrintTrialStats(out, alg, recs[0].Params.N, st)
	return nil
}

// jobID parses the {id} path value shared by the per-job routes.
func jobID(r *http.Request) (int64, error) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad job id %q", r.PathValue("id"))
	}
	return id, nil
}
