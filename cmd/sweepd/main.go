// Command sweepd is the supervised sweep daemon: a long-running process
// that accepts sweep-shard jobs over a loopback HTTP API, executes them one
// at a time through the exact code path "sweeprun run" uses (internal/jobs),
// and supervises the lifecycle — bounded dedup admission queue, retry with
// backoff for transient sink failures, a per-job attempt budget that
// quarantines repeat offenders, panic containment, and checkpointed
// restarts: SIGTERM drains the running job to a durable resumable prefix
// and persists the queue manifest; the next start re-admits everything
// recoverable, and every finished job's output is byte-identical to an
// uninterrupted command-line run (the CI chaos soak SIGKILLs a daemon
// mid-job and proves it with cmp).
//
// The job API shares the telemetry listener: alongside /metrics (which
// accepts ?name= to fetch one registry subtree) and /debug/pprof/, -addr
// serves
//
//	POST /jobs                  submit a job spec (JSON), returns its status
//	GET  /jobs                  list every known job, admission order
//	GET  /jobs/{id}             one job's status document (telemetry
//	                            run-report schema rides along verbatim once
//	                            an attempt ran)
//	POST /jobs/{id}/cancel      cancel a queued or running job
//	GET  /jobs/{id}/events      SSE: the job's structured event journal
//	                            (spans and point events) plus its per-trial
//	                            records, streamed live as they become
//	                            durable; a finished job replays its
//	                            persisted journal ("sweeprun tail" is the
//	                            terminal client)
//	GET  /jobs/{id}/results     experiment tables / trial statistics
//	                            rendered from the durable records through
//	                            internal/replay — no re-simulation
//	GET  /jobs/{id}/flagged     quarantined/undecided/violation trials
//	                            (?flag= selectors, JSON)
//	GET  /healthz               liveness + drain state
//
// Every job attempt also persists its event journal to <out>.events.jsonl
// next to the shard file and run report; -journal sizes the in-memory ring
// (0 disables journaling, and with it the journal half of /events). The
// journal is an observer: shard outputs are byte-identical with it on or
// off, watched or unwatched.
//
// A spec is the JSON shape of a "sweeprun run" invocation:
//
//	{"trials": 200000, "config": ["-alg","bitbybit","-loss","prob","-p","0.4"],
//	 "out": "/data/shard0.jsonl"}
//	{"exps": ["T3","T9"], "shard": 0, "shards": 2, "out": "/data/t3t9-s0.jsonl"}
//
// Security: like the telemetry endpoint, a host-less -addr (":9190") binds
// loopback ONLY, and there is no authentication — the API executes
// arbitrary sweep work and writes files as the daemon's user; anything
// beyond localhost needs transport security from the deployment.
//
// Exit codes follow the shared table ("sweeprun help exitcodes" or
// "sweepd -exitcodes"): 0 is a clean drain — every job finished or
// checkpointed resumable.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"adhocconsensus/internal/backoff"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/events"
	"adhocconsensus/internal/jobs"
	"adhocconsensus/internal/telemetry"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// First signal: drain. Once that is in motion, unregister — a second
		// signal takes the default disposition and kills the process.
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweepd:", err)
	}
	os.Exit(cli.ExitCodeOf(err))
}

func run(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweepd", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", ":9190", "serve the job API, /metrics, and /debug/pprof/ here; a host-less address binds loopback only")
		dir       = fs.String("dir", ".", "state directory for the recoverable queue manifest (jobs.manifest.json); queued and running jobs survive restarts through it")
		queueCap  = fs.Int("queue", 0, "admission-queue capacity; a full queue evicts its oldest queued job (0 = default 64)")
		attempts  = fs.Int("max-attempts", 0, "per-job attempt budget before transient failures quarantine it (0 = default 3)")
		base      = fs.Duration("backoff-base", 0, "first retry delay for transient job failures (0 = default 250ms)")
		capFlag   = fs.Duration("backoff-cap", 0, "retry delay ceiling (0 = default 5s)")
		jitter    = fs.Float64("jitter", 0, "deterministic backoff jitter fraction in [0,1), keyed per job fingerprint (0 = none)")
		drainWait = fs.Duration("drain-timeout", time.Minute, "how long a shutdown signal waits for the running job to checkpoint before giving up")
		quiet     = fs.Bool("quiet", false, "suppress informational output")
		table     = fs.Bool("exitcodes", false, "print the shared exit-code table and exit")
		journal   = fs.Int("journal", 8192, "event-journal ring capacity (rounded up to a power of two); 0 disables the journal and per-job .events.jsonl exports")
		sseBuf    = fs.Int("sse-buffer", 1024, "per-client journal buffer for /jobs/{id}/events; a client that falls further behind loses events (reported as 'lagged')")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *table {
		fmt.Fprint(out, cli.ExitCodesHelp)
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (sweepd takes flags only)", fs.Arg(0))
	}
	info := out
	if *quiet {
		info = io.Discard
	}
	if *journal > 0 {
		// Not one-way like telemetry.Enable: each daemon run (sequential
		// in-process test daemons included) installs a fresh journal and
		// removes it on exit, after which the streaming handlers degrade to
		// records-only.
		events.Activate(events.New(events.Options{Capacity: *journal}))
		defer events.Activate(nil)
	}

	sup, err := jobs.New(jobs.Options{
		QueueCap:    *queueCap,
		MaxAttempts: *attempts,
		Backoff:     backoff.Window{Base: *base, Cap: *capFlag, Jitter: *jitter},
		Dir:         *dir,
		Info:        info,
	})
	if err != nil {
		return cli.WithExit(cli.ExitReject, err)
	}
	srv, err := telemetry.ServeWith(*addr, func(mux *http.ServeMux) {
		registerJobAPI(mux, sup, *sseBuf)
	})
	if err != nil {
		return err
	}
	defer srv.Close()
	sup.Start()
	fmt.Fprintf(info, "sweepd: job API, /metrics, and /debug/pprof/ on http://%s (manifest in %s)\n",
		srv.Addr(), *dir)

	<-ctx.Done()
	fmt.Fprintf(info, "sweepd: draining — checkpointing the running job, persisting the queue\n")
	dctx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := sup.Drain(dctx); err != nil {
		return cli.WithExit(cli.ExitSink, fmt.Errorf("drain: %w", err))
	}
	fmt.Fprintf(info, "sweepd: drained cleanly\n")
	return nil
}

// registerJobAPI mounts the job routes on the shared telemetry mux.
func registerJobAPI(mux *http.ServeMux, sup *jobs.Supervisor, sseBuf int) {
	mux.HandleFunc("POST /jobs", func(w http.ResponseWriter, r *http.Request) {
		var spec jobs.Spec
		dec := json.NewDecoder(r.Body)
		dec.DisallowUnknownFields()
		if err := dec.Decode(&spec); err != nil {
			writeErr(w, http.StatusBadRequest, fmt.Errorf("bad job spec: %w", err))
			return
		}
		st, err := sup.Submit(spec)
		if err != nil {
			writeErr(w, http.StatusUnprocessableEntity, err)
			return
		}
		writeJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /jobs", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, sup.Jobs())
	})
	mux.HandleFunc("GET /jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		id, err := jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		st, ok := sup.Job(id)
		if !ok {
			writeErr(w, http.StatusNotFound, fmt.Errorf("no job %d", id))
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("POST /jobs/{id}/cancel", func(w http.ResponseWriter, r *http.Request) {
		id, err := jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		st, err := sup.Cancel(id)
		if err != nil {
			writeErr(w, http.StatusNotFound, err)
			return
		}
		writeJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /jobs/{id}/events", func(w http.ResponseWriter, r *http.Request) {
		id, err := jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		handleEvents(w, r, sup, id, sseBuf)
	})
	mux.HandleFunc("GET /jobs/{id}/results", func(w http.ResponseWriter, r *http.Request) {
		id, err := jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		handleResults(w, r, sup, id)
	})
	mux.HandleFunc("GET /jobs/{id}/flagged", func(w http.ResponseWriter, r *http.Request) {
		id, err := jobID(r)
		if err != nil {
			writeErr(w, http.StatusBadRequest, err)
			return
		}
		handleFlagged(w, r, sup, id)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "jobs": len(sup.Jobs())})
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, map[string]string{"error": err.Error()})
}
