package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"adhocconsensus/internal/events"
	"adhocconsensus/internal/jobs"
	"adhocconsensus/internal/sink"
	"adhocconsensus/internal/telemetry"
)

// frame is one parsed SSE frame.
type frame struct {
	typ  string
	data string
}

// readFrames consumes an SSE body until stop returns true or the reader
// ends, returning every frame seen.
func readFrames(t *testing.T, r *bufio.Scanner, stop func(frame) bool) []frame {
	t.Helper()
	var frames []frame
	var cur frame
	for r.Scan() {
		line := r.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		case line == "":
			if cur.typ == "" && cur.data == "" {
				continue
			}
			frames = append(frames, cur)
			done := stop(cur)
			cur = frame{}
			if done {
				return frames
			}
		}
	}
	return frames
}

func openStream(t *testing.T, ctx context.Context, url string) (*http.Response, *bufio.Scanner) {
	t.Helper()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		resp.Body.Close()
		t.Fatalf("stream: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("stream content type %q", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return resp, sc
}

// TestJobsListOrder: GET /jobs returns jobs in admission-sequence order —
// deterministic across calls, first-admitted first.
func TestJobsListOrder(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("drain returned %v", err)
		}
	}()

	var ids []int64
	for _, name := range []string{"c.jsonl", "a.jsonl", "b.jsonl"} {
		spec := jobs.Spec{
			Trials: 5,
			Config: []string{"-alg", "propose", "-seed", "11"},
			Out:    filepath.Join(dir, name),
		}
		resp, body := postJSON(t, baseURL+"/jobs", spec)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit %s: %s\n%s", name, resp.Status, body)
		}
		var st jobs.Status
		if err := json.Unmarshal(body, &st); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, st.ID)
	}
	for try := 0; try < 3; try++ { // deterministic: same order every call
		var list []jobs.Status
		getJSON(t, baseURL+"/jobs", &list)
		if len(list) != len(ids) {
			t.Fatalf("list has %d jobs, want %d", len(list), len(ids))
		}
		for i, st := range list {
			if st.ID != ids[i] {
				t.Fatalf("list[%d] = job %d, want admission order %v", i, st.ID, ids)
			}
		}
	}
}

// TestDaemonEventStreamLive tails a running job over one SSE connection: the
// journal narrative arrives in seq order, per-trial records arrive as they
// become durable, and the stream closes with eof once the job is done.
func TestDaemonEventStreamLive(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("drain returned %v", err)
		}
	}()

	spec := jobs.Spec{
		Trials: 20000,
		Config: []string{"-alg", "bitbybit", "-loss", "prob", "-p", "0.4", "-seed", "7"},
		Out:    filepath.Join(dir, "live.jsonl"),
	}
	_, body := postJSON(t, baseURL+"/jobs", spec)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	resp, sc := openStream(t, ctx, fmt.Sprintf("%s/jobs/%d/events", baseURL, st.ID))
	defer resp.Body.Close()
	frames := readFrames(t, sc, func(f frame) bool { return f.typ == "eof" })

	var lastSeq uint64
	types := map[string]int{}
	records := 0
	var lastIndex = -1
	for _, f := range frames {
		switch f.typ {
		case "journal":
			e, err := events.ParseEvent([]byte(f.data))
			if err != nil {
				t.Fatalf("bad journal frame %q: %v", f.data, err)
			}
			if e.Seq <= lastSeq {
				t.Fatalf("journal out of order: seq %d after %d", e.Seq, lastSeq)
			}
			lastSeq = e.Seq
			if e.Job != st.ID {
				t.Fatalf("journal frame for job %d leaked into job %d's stream", e.Job, st.ID)
			}
			types[e.Type]++
		case "record":
			var rec sink.Record
			if err := json.Unmarshal([]byte(f.data), &rec); err != nil {
				t.Fatalf("bad record frame %q: %v", f.data, err)
			}
			if rec.Index != lastIndex+1 {
				t.Fatalf("record %d arrived after %d — records must stream in order", rec.Index, lastIndex)
			}
			lastIndex = rec.Index
			records++
		case "eof":
			var end struct{ State string }
			if err := json.Unmarshal([]byte(f.data), &end); err != nil {
				t.Fatal(err)
			}
			if end.State != string(jobs.StateDone) {
				t.Fatalf("eof state %q, want done", end.State)
			}
		case "lagged":
			// Acceptable under load; drops are counted, not hidden.
		default:
			t.Fatalf("unknown frame type %q", f.typ)
		}
	}
	if records != spec.Trials {
		t.Fatalf("streamed %d records, want all %d", records, spec.Trials)
	}
	for _, want := range []string{"job.admit", "job.begin", "segment.begin", "batch.begin", "segment.end", "job.end"} {
		if types[want] == 0 {
			t.Fatalf("journal stream carried no %s event: %v", want, types)
		}
	}
}

// TestDaemonEventStreamReplayAfterCompletion: subscribing after the job is
// done replays the persisted journal and the shard records, then eof —
// satellite 3's late-subscriber story.
func TestDaemonEventStreamReplayAfterCompletion(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("drain returned %v", err)
		}
	}()

	spec := jobs.Spec{
		Trials: 30,
		Config: []string{"-alg", "propose", "-seed", "11"},
		Out:    filepath.Join(dir, "done.jsonl"),
	}
	_, body := postJSON(t, baseURL+"/jobs", spec)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitDone(t, baseURL, st.ID, 30*time.Second)

	persisted, err := events.ReadEventsFile(spec.Out + ".events.jsonl")
	if err != nil {
		t.Fatalf("persisted journal: %v", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	resp, sc := openStream(t, ctx, fmt.Sprintf("%s/jobs/%d/events", baseURL, st.ID))
	defer resp.Body.Close()
	frames := readFrames(t, sc, func(f frame) bool { return f.typ == "eof" })

	var journal []events.Event
	records := 0
	for _, f := range frames {
		switch f.typ {
		case "journal":
			e, err := events.ParseEvent([]byte(f.data))
			if err != nil {
				t.Fatal(err)
			}
			journal = append(journal, e)
		case "record":
			records++
		}
	}
	if len(journal) != len(persisted) {
		t.Fatalf("replay streamed %d journal events, persisted file has %d", len(journal), len(persisted))
	}
	for i := range journal {
		if journal[i] != persisted[i] {
			t.Fatalf("replayed event %d = %+v, persisted %+v", i, journal[i], persisted[i])
		}
	}
	if records != spec.Trials {
		t.Fatalf("replay streamed %d records, want %d", records, spec.Trials)
	}
	if frames[len(frames)-1].typ != "eof" {
		t.Fatal("replay did not end with eof")
	}
}

// TestDaemonEventStreamClientDisconnect: a client vanishing mid-stream costs
// the daemon nothing — the job completes, the daemon stays healthy, and the
// drain is clean.
func TestDaemonEventStreamClientDisconnect(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)

	spec := jobs.Spec{
		Trials: 20000,
		Config: []string{"-alg", "bitbybit", "-loss", "prob", "-p", "0.4", "-seed", "3"},
		Out:    filepath.Join(dir, "gone.jsonl"),
	}
	_, body := postJSON(t, baseURL+"/jobs", spec)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	resp, sc := openStream(t, ctx, fmt.Sprintf("%s/jobs/%d/events", baseURL, st.ID))
	// Read one frame, then hang up mid-stream.
	readFrames(t, sc, func(frame) bool { return true })
	cancel()
	resp.Body.Close()

	var health map[string]any
	getJSON(t, baseURL+"/healthz", &health)
	if health["status"] != "ok" {
		t.Fatalf("healthz after disconnect: %+v", health)
	}
	if final := waitDone(t, baseURL, st.ID, 60*time.Second); final.State != jobs.StateDone {
		t.Fatalf("job finished %s after client disconnect, want done", final.State)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("drain returned %v", err)
	}
}

// gatedWriter is an http.ResponseWriter whose Write blocks until released —
// a deterministic stand-in for a consumer too slow to drain its socket.
type gatedWriter struct {
	mu      sync.Mutex
	b       bytes.Buffer
	gate    chan struct{}
	blocked chan struct{}
	once    sync.Once
}

func newGatedWriter() *gatedWriter {
	return &gatedWriter{gate: make(chan struct{}), blocked: make(chan struct{})}
}
func (g *gatedWriter) Header() http.Header { return http.Header{} }
func (g *gatedWriter) WriteHeader(int)     {}
func (g *gatedWriter) Flush()              {}
func (g *gatedWriter) Write(p []byte) (int, error) {
	g.once.Do(func() { close(g.blocked) })
	<-g.gate
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.b.Write(p)
}
func (g *gatedWriter) String() string {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.b.String()
}

// TestEventStreamSlowConsumerDrops: a consumer that cannot keep up loses
// journal events by policy, never stalls the emitters — the drops land in
// telemetry and the stream reports them with a lagged frame when the
// consumer catches back up.
func TestEventStreamSlowConsumerDrops(t *testing.T) {
	telemetry.Enable()
	jal := events.New(events.Options{})
	events.Activate(jal)
	defer events.Activate(nil)

	sup, err := jobs.New(jobs.Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	// Deliberately not started: the submitted job stays queued (non-terminal)
	// for as long as the test needs.
	st, err := sup.Submit(jobs.Spec{
		Trials: 5,
		Config: []string{"-alg", "propose", "-seed", "11"},
		Out:    filepath.Join(t.TempDir(), "q.jsonl"),
	})
	if err != nil {
		t.Fatal(err)
	}

	droppedBase := telemetry.Events().Dropped.Load()
	w := newGatedWriter()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req := httptest.NewRequest(http.MethodGet, fmt.Sprintf("/jobs/%d/events", st.ID), nil).WithContext(ctx)
	done := make(chan struct{})
	go func() {
		defer close(done)
		handleEvents(w, req, sup, st.ID, 1) // subscription buffer of one
	}()

	// The admit point is already in the ring, so the handler's first frame
	// write blocks on the gate. Everything emitted now overflows its
	// one-slot subscription.
	select {
	case <-w.blocked:
	case <-time.After(5 * time.Second):
		t.Fatal("handler never wrote the snapshot frame")
	}
	const burst = 100
	for i := 0; i < burst; i++ {
		jal.PointJob(events.TypeCheckpoint, st.ID, int64(i))
	}
	if d := telemetry.Events().Dropped.Load() - droppedBase; d < burst-2 {
		t.Fatalf("telemetry counted %d drops for a blocked consumer, want >= %d", d, burst-2)
	}
	close(w.gate) // the consumer catches up

	deadline := time.Now().Add(5 * time.Second)
	for !strings.Contains(w.String(), "event: lagged") {
		if time.Now().After(deadline) {
			t.Fatalf("no lagged frame after drops; stream so far:\n%s", w.String())
		}
		time.Sleep(10 * time.Millisecond)
	}
	cancel()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("handler did not return after client disconnect")
	}
}

// TestDaemonResultsAndFlagged: /results renders the durable records through
// the replay surface (no re-simulation), /flagged drills into selected
// trials, and bad input answers with the right statuses.
func TestDaemonResultsAndFlagged(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("drain returned %v", err)
		}
	}()

	spec := jobs.Spec{
		Trials: 30,
		Config: []string{"-alg", "propose", "-seed", "11"},
		Out:    filepath.Join(dir, "res.jsonl"),
	}
	_, body := postJSON(t, baseURL+"/jobs", spec)
	var st jobs.Status
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	waitDone(t, baseURL, st.ID, 30*time.Second)

	resp, err := http.Get(fmt.Sprintf("%s/jobs/%d/results", baseURL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("results: %s\n%s", resp.Status, buf.String())
	}
	for _, want := range []string{"algorithm : propose", "trials    : 30", "decided   : 30/30"} {
		if !strings.Contains(buf.String(), want) {
			t.Fatalf("results missing %q:\n%s", want, buf.String())
		}
	}
	resp, err = http.Get(fmt.Sprintf("%s/jobs/%d/results?quiet", baseURL, st.ID))
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	_, _ = buf.ReadFrom(resp.Body)
	resp.Body.Close()
	if !strings.Contains(buf.String(), "trials: 30 merged, 30 decided, 0 violation(s)") {
		t.Fatalf("quiet results: %s", buf.String())
	}

	var flagged struct {
		Count   int `json:"count"`
		Flagged []struct {
			Index   int      `json:"index"`
			Reasons []string `json:"reasons"`
		} `json:"flagged"`
	}
	getJSON(t, fmt.Sprintf("%s/jobs/%d/flagged", baseURL, st.ID), &flagged)
	if flagged.Count != 0 {
		t.Fatalf("healthy run flagged %d trials by default: %+v", flagged.Count, flagged)
	}
	getJSON(t, fmt.Sprintf("%s/jobs/%d/flagged?flag=slowest=3", baseURL, st.ID), &flagged)
	if flagged.Count != 3 {
		t.Fatalf("slowest=3 flagged %d trials", flagged.Count)
	}
	if r := getJSON(t, fmt.Sprintf("%s/jobs/%d/flagged?flag=bogus", baseURL, st.ID), nil); r.StatusCode != http.StatusBadRequest {
		t.Fatalf("bogus selector: %s", r.Status)
	}
	if r := getJSON(t, baseURL+"/jobs/999/results", nil); r.StatusCode != http.StatusNotFound {
		t.Fatalf("missing job results: %s", r.Status)
	}
}

// TestDaemonMetricsNameFilter: /metrics?name= subsets the registry by
// prefix on the shared listener.
func TestDaemonMetricsNameFilter(t *testing.T) {
	dir := t.TempDir()
	baseURL, shutdown := startDaemon(t, dir)
	defer func() {
		if err := shutdown(); err != nil {
			t.Fatalf("drain returned %v", err)
		}
	}()
	var metrics map[string]any
	getJSON(t, baseURL+"/metrics?name=jobs.", &metrics)
	if len(metrics) == 0 {
		t.Fatal("?name=jobs. returned nothing")
	}
	for name := range metrics {
		if !strings.HasPrefix(name, "jobs.") {
			t.Fatalf("?name=jobs. leaked %q", name)
		}
	}
}
