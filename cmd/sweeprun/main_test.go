package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/experiments"
	"adhocconsensus/internal/sink"
)

// runCLI invokes the CLI entry point with a background context, the way
// every test that isn't exercising cancellation wants to.
func runCLI(args []string, out io.Writer) error {
	return run(context.Background(), args, out)
}

// runShards executes an experiment sharded k ways into JSONL files and
// returns the merged output.
func runShards(t *testing.T, exp string, k, workers int) string {
	t.Helper()
	dir := t.TempDir()
	files := make([]string, 0, k)
	for i := 0; i < k; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		args := []string{"run", "-exp", exp,
			"-shard", fmt.Sprintf("%d/%d", i, k),
			"-workers", fmt.Sprint(workers), "-o", path}
		if err := runCLI(args, os.Stdout); err != nil {
			t.Fatalf("shard %d/%d: %v", i, k, err)
		}
		files = append(files, path)
	}
	var out strings.Builder
	if err := runCLI(append([]string{"merge"}, files...), &out); err != nil {
		t.Fatalf("merge %d shards: %v", k, err)
	}
	return out.String()
}

// TestMergeByteIdenticalAcrossShardCounts is the subsystem's acceptance
// test: for k in {1, 2, 4, 7}, merging the k shard files reproduces the
// in-process single-machine table byte for byte. T4 exercises crash
// schedules; T3 seeded loss and noise; both run under both trace modes via
// the forced-trace hook.
func TestMergeByteIdenticalAcrossShardCounts(t *testing.T) {
	for _, tc := range []struct {
		exp string
		fn  func() (*experiments.Table, error)
	}{
		{"T3", experiments.T3Alg2ValueSweep},
		{"T4", experiments.T4Alg3NoCF}, // crash schedules
	} {
		for _, mode := range []struct {
			name  string
			trace engine.TraceMode
		}{
			{"decisions", engine.TraceDecisionsOnly},
			{"full", engine.TraceFull},
		} {
			t.Run(tc.exp+"/"+mode.name, func(t *testing.T) {
				restore := experiments.ForceTraceMode(mode.trace)
				defer restore()
				table, err := tc.fn()
				if err != nil {
					t.Fatal(err)
				}
				if !table.Pass {
					t.Fatalf("in-process %s failed:\n%s", tc.exp, table)
				}
				want := fmt.Sprintln(table)
				for _, k := range []int{1, 2, 4, 7} {
					got := runShards(t, tc.exp, k, 3)
					if got != want {
						t.Fatalf("k=%d shards diverged from in-process run:\n--- merged ---\n%s--- in-process ---\n%s", k, got, want)
					}
				}
			})
		}
	}
}

// TestMergeTrialsByteIdentical covers the configuration-sweep path: shard a
// 60-trial sweep 4 ways through the CLI, merge, and require the exact
// stats + seed-provenance block the in-process RunTrials path prints.
func TestMergeTrialsByteIdentical(t *testing.T) {
	cfgFlags := []string{"-alg", "bitbybit", "-values", "3,7,7,1", "-domain", "16",
		"-loss", "prob", "-p", "0.4", "-cst", "9", "-seed", "11"}
	const trials = 60

	// In-process expectation, via the same public API consensus-sim uses.
	cfg := adhocconsensus.Config{
		Algorithm:    adhocconsensus.AlgorithmBitByBit,
		Values:       []adhocconsensus.Value{3, 7, 7, 1},
		Domain:       16,
		Loss:         adhocconsensus.LossProbabilistic,
		LossP:        0.4,
		ECFRound:     9,
		Stable:       9,
		DetectorRace: 9,
		Seed:         11,
		MaxRounds:    100000,
		ResultSink:   nil,
	}
	var collected []adhocconsensus.TrialResult
	cfg.ResultSink = trialCollector{&collected}
	st, err := cfg.RunTrials(trials, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	cli.PrintTrialStats(&want, cfg.Algorithm, len(cfg.Values), st)
	cli.PrintSeedProvenance(&want, collected)

	dir := t.TempDir()
	const k = 4
	files := make([]string, 0, k)
	for i := 0; i < k; i++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.jsonl", i))
		args := append([]string{"run", "-trials", fmt.Sprint(trials),
			"-shard", fmt.Sprintf("%d/%d", i, k), "-o", path}, cfgFlags...)
		if err := runCLI(args, os.Stdout); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		files = append(files, path)
	}
	var got strings.Builder
	if err := runCLI(append([]string{"merge"}, files...), &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("merged trials output diverged:\n--- merged ---\n%s--- in-process ---\n%s", got.String(), want.String())
	}
}

// trialCollector mirrors consensus-sim's sink for the expectation side.
type trialCollector struct {
	results *[]adhocconsensus.TrialResult
}

func (c trialCollector) Consume(r adhocconsensus.TrialResult) error {
	*c.results = append(*c.results, r)
	return nil
}

// TestWorkItemShardsByteIdentical is the work-item acceptance test: the
// bespoke pipelines shard through universal work items, and for k in
// {1, 2, 4} the merged shard files reproduce the in-process table byte for
// byte. M1 covers seeded stochastic floods; T9 the deterministic
// impossibility constructions (detail strings with unicode).
func TestWorkItemShardsByteIdentical(t *testing.T) {
	for _, tc := range []struct {
		exp string
		fn  func() (*experiments.Table, error)
	}{
		{"M1", experiments.M1MultihopFlood},
		{"T9", experiments.T9Impossibility},
	} {
		t.Run(tc.exp, func(t *testing.T) {
			table, err := tc.fn()
			if err != nil {
				t.Fatal(err)
			}
			if !table.Pass {
				t.Fatalf("in-process %s failed:\n%s", tc.exp, table)
			}
			want := fmt.Sprintln(table)
			for _, k := range []int{1, 2, 4} {
				got := runShards(t, tc.exp, k, 3)
				if got != want {
					t.Fatalf("k=%d shards diverged from in-process run:\n--- merged ---\n%s--- in-process ---\n%s", k, got, want)
				}
			}
		})
	}
}

// TestReplayRendersWithoutRerun: the replay subcommand reproduces the
// IN-PROCESS tables byte-identically from shard files alone —
// render-without-rerun through the CLI, for a grid and a work experiment
// in one run. (merge shares replay's code path, so the reference here is
// deliberately the in-process renderer, not merge's output.)
func TestReplayRendersWithoutRerun(t *testing.T) {
	dir := t.TempDir()
	files := make([]string, 0, 2)
	for i := 0; i < 2; i++ {
		path := filepath.Join(dir, fmt.Sprintf("s%d.jsonl", i))
		if err := runCLI([]string{"run", "-exp", "T8,T9", "-shard", fmt.Sprintf("%d/2", i), "-o", path}, os.Stdout); err != nil {
			t.Fatal(err)
		}
		files = append(files, path)
	}
	t8, err := experiments.T8MajHalfGap()
	if err != nil {
		t.Fatal(err)
	}
	t9, err := experiments.T9Impossibility()
	if err != nil {
		t.Fatal(err)
	}
	want := fmt.Sprintln(t8) + fmt.Sprintln(t9)
	var replayed strings.Builder
	if err := runCLI(append([]string{"replay"}, files...), &replayed); err != nil {
		t.Fatal(err)
	}
	if replayed.String() != want {
		t.Fatalf("replay diverged from in-process tables:\n--- replay ---\n%s--- in-process ---\n%s", replayed.String(), want)
	}

	// -quiet reduces each experiment to one PASS/FAIL line.
	var quiet strings.Builder
	if err := runCLI(append([]string{"replay", "-quiet"}, files...), &quiet); err != nil {
		t.Fatal(err)
	}
	if quiet.String() != "T8: PASS\nT9: PASS\n" {
		t.Fatalf("quiet output:\n%s", quiet.String())
	}
}

// TestVerifyAuditsFlaggedSeeds drives the forensic loop through the CLI:
// T8's recorded agreement violation is flagged and re-executed at full
// trace against the recorded digest; a corrupted record makes verify exit
// non-zero; -bundle writes the trace bundle.
func TestVerifyAuditsFlaggedSeeds(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "t8.jsonl")
	if err := runCLI([]string{"run", "-exp", "T8", "-shard", "0/1", "-o", shard}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	bundles := filepath.Join(dir, "bundles")
	var out strings.Builder
	if err := runCLI([]string{"verify", "-flag", "violations,slowest=1", "-bundle", bundles, shard}, &out); err != nil {
		t.Fatalf("honest verify failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "digest ok, trace legal") {
		t.Fatalf("verify output missing clean audits:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "[violation]") {
		t.Fatalf("verify output missing the violation flag:\n%s", out.String())
	}
	written, err := filepath.Glob(filepath.Join(bundles, "T8-*.txt"))
	if err != nil || len(written) == 0 {
		t.Fatalf("no trace bundles written: %v %v", written, err)
	}
	bundle, err := os.ReadFile(written[0])
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(bundle), "trace bundle") {
		t.Fatalf("bundle content:\n%s", bundle)
	}

	// Corrupt one record's digest: recheck must catch it and exit non-zero.
	corrupted := filepath.Join(dir, "bad.jsonl")
	corruptRecord(t, shard, corrupted)
	var bad strings.Builder
	if err := runCLI([]string{"verify", "-flag", "recheck", corrupted}, &bad); err == nil {
		t.Fatalf("corrupted shard passed verification:\n%s", bad.String())
	}
	if !strings.Contains(bad.String(), "AUDIT FAILED") || !strings.Contains(bad.String(), "digest-mismatch") {
		t.Fatalf("verify output does not report the failed audit:\n%s", bad.String())
	}
}

// corruptRecord copies a shard file, bumping the first record's round count.
func corruptRecord(t *testing.T, src, dst string) {
	t.Helper()
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sink.ReadRecords(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	recs[0].Rounds += 2
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	j := sink.NewJSONL(out)
	for _, rec := range recs {
		if err := j.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	out.Close()
}

// TestVerifyTrialsThroughPublicAPI: configuration-sweep records verify
// through Config.ReplayFlagged when the run's flags are repeated; a
// mismatched configuration is rejected by fingerprint.
func TestVerifyTrialsThroughPublicAPI(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "trials.jsonl")
	cfgFlags := []string{"-alg", "bitbybit", "-values", "3,7,7,1", "-domain", "16",
		"-loss", "prob", "-p", "0.4", "-cst", "9", "-seed", "11"}
	if err := runCLI(append([]string{"run", "-trials", "20", "-shard", "0/1", "-o", shard}, cfgFlags...), os.Stdout); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	if err := runCLI(append(append([]string{"verify", "-flag", "slowest=2"}, cfgFlags...), shard), &out); err != nil {
		t.Fatalf("honest trials verify failed: %v\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "2 trial(s) flagged of 20") || !strings.Contains(out.String(), "digest ok, trace legal") {
		t.Fatalf("trials verify output:\n%s", out.String())
	}
	// Different -seed => different sweep fingerprint => rejected.
	var mism strings.Builder
	wrong := append([]string{"verify", "-flag", "slowest=1", "-alg", "bitbybit", "-values", "3,7,7,1",
		"-domain", "16", "-loss", "prob", "-p", "0.4", "-cst", "9", "-seed", "12"}, shard)
	if err := runCLI(wrong, &mism); err == nil {
		t.Fatal("mismatched configuration accepted for trials verification")
	}
}

// TestMergeShardVerdicts: a rejected shard set names the offending file and
// exits non-zero, and -quiet condenses passing merges.
func TestMergeShardVerdicts(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	if err := runCLI([]string{"run", "-exp", "T8", "-shard", "0/2", "-o", good}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.jsonl")
	if err := runCLI([]string{"run", "-exp", "T8", "-shard", "1/2", "-o", bad}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	corrupted := filepath.Join(dir, "corrupted.jsonl")
	corruptSeed(t, bad, corrupted)
	var out strings.Builder
	if err := runCLI([]string{"merge", good, corrupted}, &out); err == nil {
		t.Fatal("merge accepted a corrupted shard")
	}
	if !strings.Contains(out.String(), "shard "+good+": ok") {
		t.Fatalf("good shard not marked ok:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "shard "+corrupted+": REJECTED") {
		t.Fatalf("corrupted shard not named:\n%s", out.String())
	}

	var quiet strings.Builder
	if err := runCLI([]string{"merge", "-quiet", good, bad}, &quiet); err != nil {
		t.Fatalf("quiet merge of honest shards failed: %v\n%s", err, quiet.String())
	}
	if quiet.String() != "T8: PASS\n" {
		t.Fatalf("quiet merge output:\n%s", quiet.String())
	}
}

// corruptSeed copies a shard file, bumping the first record's seed (a
// provenance violation the per-shard verdict must localize).
func corruptSeed(t *testing.T, src, dst string) {
	t.Helper()
	f, err := os.Open(src)
	if err != nil {
		t.Fatal(err)
	}
	recs, err := sink.ReadRecords(f)
	f.Close()
	if err != nil {
		t.Fatal(err)
	}
	recs[0].Seed++
	out, err := os.Create(dst)
	if err != nil {
		t.Fatal(err)
	}
	j := sink.NewJSONL(out)
	for _, rec := range recs {
		if err := j.WriteRecord(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	out.Close()
}

// TestMergeRejectsBadShardSets covers the merge guards: incomplete covers,
// overlapping shards, and mixed configurations must fail loudly rather
// than fold into wrong tables.
func TestMergeRejectsBadShardSets(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.jsonl")
	s1 := filepath.Join(dir, "s1.jsonl")
	for i, path := range []string{s0, s1} {
		if err := runCLI([]string{"run", "-exp", "T8", "-shard", fmt.Sprintf("%d/2", i), "-o", path}, os.Stdout); err != nil {
			t.Fatal(err)
		}
	}
	if err := runCLI([]string{"merge", s0}, os.Stdout); err == nil {
		t.Fatal("merge accepted an incomplete shard set")
	}
	if err := runCLI([]string{"merge", s0, s1, s1}, os.Stdout); err == nil {
		t.Fatal("merge accepted overlapping shards")
	}

	// A shard of a different configuration must be rejected by fingerprint.
	tr0 := filepath.Join(dir, "tr0.jsonl")
	tr1 := filepath.Join(dir, "tr1.jsonl")
	if err := runCLI([]string{"run", "-trials", "10", "-shard", "0/2", "-seed", "1", "-o", tr0}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := runCLI([]string{"run", "-trials", "10", "-shard", "1/2", "-p", "0.4", "-loss", "prob", "-seed", "1", "-o", tr1}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := runCLI([]string{"merge", tr0, tr1}, os.Stdout); err == nil {
		t.Fatal("merge accepted shards of two different configurations")
	}

	// Same parameters but a different base -seed is also a different sweep:
	// the fingerprint covers the sweep seed, so the mix must be rejected.
	sd1 := filepath.Join(dir, "sd1.jsonl")
	if err := runCLI([]string{"run", "-trials", "10", "-shard", "1/2", "-seed", "2", "-o", sd1}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := runCLI([]string{"merge", tr0, sd1}, os.Stdout); err == nil {
		t.Fatal("merge accepted shards run with different base seeds")
	}
}

// TestMergeRejectsMixedSchedules: shards of one configuration recorded
// under different seed schedules are different experiments; merge must
// reject the mix with the typed, positioned error (and exit code 4), and a
// uniform v2 shard set must merge cleanly.
func TestMergeRejectsMixedSchedules(t *testing.T) {
	dir := t.TempDir()
	shard := func(name string, i, k int, extra ...string) string {
		path := filepath.Join(dir, name)
		args := append([]string{"run", "-trials", "10", "-shard", fmt.Sprintf("%d/%d", i, k),
			"-loss", "prob", "-p", "0.4", "-seed", "1", "-o", path}, extra...)
		if err := runCLI(args, os.Stdout); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		return path
	}
	v1a := shard("v1a.jsonl", 0, 2)
	v2b := shard("v2b.jsonl", 1, 2, "-schedule", "2")
	err := runCLI([]string{"merge", v1a, v2b}, os.Stdout)
	if err == nil {
		t.Fatal("merge accepted shards recorded under different seed schedules")
	}
	if code := exitCodeOf(err); code != exitReject {
		t.Fatalf("exit code %d, want %d (reject): %v", code, exitReject, err)
	}
	var mismatch *sink.ScheduleMismatchError
	if !errors.As(err, &mismatch) {
		t.Fatalf("mixed-schedule rejection %v is not a *sink.ScheduleMismatchError", err)
	}
	if mismatch.Got == mismatch.Want {
		t.Fatalf("degenerate mismatch %+v", mismatch)
	}

	// A complete, uniform v2 shard set is a legitimate sweep and merges.
	v2a := shard("v2a.jsonl", 0, 2, "-schedule", "2")
	var out strings.Builder
	if err := runCLI([]string{"merge", v2a, v2b}, &out); err != nil {
		t.Fatalf("uniform v2 merge failed: %v", err)
	}
	if !strings.Contains(out.String(), "trials") {
		t.Fatalf("v2 merge printed no trials summary:\n%s", out.String())
	}
}

// TestRunRejectsBadInput covers the CLI's own validation.
func TestRunRejectsBadInput(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"no mode", []string{"run"}},
		{"both modes", []string{"run", "-exp", "T3", "-trials", "5"}},
		{"bad shard", []string{"run", "-exp", "T3", "-shard", "2/2"}},
		{"shard trailing garbage", []string{"run", "-exp", "T3", "-shard", "1/2/3"}},
		{"shard not numeric", []string{"run", "-exp", "T3", "-shard", "a/b"}},
		{"unknown experiment", []string{"run", "-exp", "T99"}},
		{"merge without files", []string{"merge"}},
		{"replay without files", []string{"replay"}},
		{"verify without files", []string{"verify"}},
		{"verify bad selector", []string{"verify", "-flag", "frobnicate", "x.jsonl"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := runCLI(tt.args, os.Stdout); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}
