package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/experiments"
)

// runShards executes an experiment sharded k ways into JSONL files and
// returns the merged output.
func runShards(t *testing.T, exp string, k, workers int) string {
	t.Helper()
	dir := t.TempDir()
	files := make([]string, 0, k)
	for i := 0; i < k; i++ {
		path := filepath.Join(dir, fmt.Sprintf("shard%d.jsonl", i))
		args := []string{"run", "-exp", exp,
			"-shard", fmt.Sprintf("%d/%d", i, k),
			"-workers", fmt.Sprint(workers), "-o", path}
		if err := run(args, os.Stdout); err != nil {
			t.Fatalf("shard %d/%d: %v", i, k, err)
		}
		files = append(files, path)
	}
	var out strings.Builder
	if err := run(append([]string{"merge"}, files...), &out); err != nil {
		t.Fatalf("merge %d shards: %v", k, err)
	}
	return out.String()
}

// TestMergeByteIdenticalAcrossShardCounts is the subsystem's acceptance
// test: for k in {1, 2, 4, 7}, merging the k shard files reproduces the
// in-process single-machine table byte for byte. T4 exercises crash
// schedules; T3 seeded loss and noise; both run under both trace modes via
// the forced-trace hook.
func TestMergeByteIdenticalAcrossShardCounts(t *testing.T) {
	for _, tc := range []struct {
		exp string
		fn  func() (*experiments.Table, error)
	}{
		{"T3", experiments.T3Alg2ValueSweep},
		{"T4", experiments.T4Alg3NoCF}, // crash schedules
	} {
		for _, mode := range []struct {
			name  string
			trace engine.TraceMode
		}{
			{"decisions", engine.TraceDecisionsOnly},
			{"full", engine.TraceFull},
		} {
			t.Run(tc.exp+"/"+mode.name, func(t *testing.T) {
				restore := experiments.ForceTraceMode(mode.trace)
				defer restore()
				table, err := tc.fn()
				if err != nil {
					t.Fatal(err)
				}
				if !table.Pass {
					t.Fatalf("in-process %s failed:\n%s", tc.exp, table)
				}
				want := fmt.Sprintln(table)
				for _, k := range []int{1, 2, 4, 7} {
					got := runShards(t, tc.exp, k, 3)
					if got != want {
						t.Fatalf("k=%d shards diverged from in-process run:\n--- merged ---\n%s--- in-process ---\n%s", k, got, want)
					}
				}
			})
		}
	}
}

// TestMergeTrialsByteIdentical covers the configuration-sweep path: shard a
// 60-trial sweep 4 ways through the CLI, merge, and require the exact
// stats + seed-provenance block the in-process RunTrials path prints.
func TestMergeTrialsByteIdentical(t *testing.T) {
	cfgFlags := []string{"-alg", "bitbybit", "-values", "3,7,7,1", "-domain", "16",
		"-loss", "prob", "-p", "0.4", "-cst", "9", "-seed", "11"}
	const trials = 60

	// In-process expectation, via the same public API consensus-sim uses.
	cfg := adhocconsensus.Config{
		Algorithm:    adhocconsensus.AlgorithmBitByBit,
		Values:       []adhocconsensus.Value{3, 7, 7, 1},
		Domain:       16,
		Loss:         adhocconsensus.LossProbabilistic,
		LossP:        0.4,
		ECFRound:     9,
		Stable:       9,
		DetectorRace: 9,
		Seed:         11,
		MaxRounds:    100000,
		ResultSink:   nil,
	}
	var collected []adhocconsensus.TrialResult
	cfg.ResultSink = trialCollector{&collected}
	st, err := cfg.RunTrials(trials, 0)
	if err != nil {
		t.Fatal(err)
	}
	var want strings.Builder
	cli.PrintTrialStats(&want, cfg.Algorithm, len(cfg.Values), st)
	cli.PrintSeedProvenance(&want, collected)

	dir := t.TempDir()
	const k = 4
	files := make([]string, 0, k)
	for i := 0; i < k; i++ {
		path := filepath.Join(dir, fmt.Sprintf("t%d.jsonl", i))
		args := append([]string{"run", "-trials", fmt.Sprint(trials),
			"-shard", fmt.Sprintf("%d/%d", i, k), "-o", path}, cfgFlags...)
		if err := run(args, os.Stdout); err != nil {
			t.Fatalf("shard %d: %v", i, err)
		}
		files = append(files, path)
	}
	var got strings.Builder
	if err := run(append([]string{"merge"}, files...), &got); err != nil {
		t.Fatal(err)
	}
	if got.String() != want.String() {
		t.Fatalf("merged trials output diverged:\n--- merged ---\n%s--- in-process ---\n%s", got.String(), want.String())
	}
}

// trialCollector mirrors consensus-sim's sink for the expectation side.
type trialCollector struct {
	results *[]adhocconsensus.TrialResult
}

func (c trialCollector) Consume(r adhocconsensus.TrialResult) error {
	*c.results = append(*c.results, r)
	return nil
}

// TestMergeRejectsBadShardSets covers the merge guards: incomplete covers,
// overlapping shards, and mixed configurations must fail loudly rather
// than fold into wrong tables.
func TestMergeRejectsBadShardSets(t *testing.T) {
	dir := t.TempDir()
	s0 := filepath.Join(dir, "s0.jsonl")
	s1 := filepath.Join(dir, "s1.jsonl")
	for i, path := range []string{s0, s1} {
		if err := run([]string{"run", "-exp", "T8", "-shard", fmt.Sprintf("%d/2", i), "-o", path}, os.Stdout); err != nil {
			t.Fatal(err)
		}
	}
	if err := run([]string{"merge", s0}, os.Stdout); err == nil {
		t.Fatal("merge accepted an incomplete shard set")
	}
	if err := run([]string{"merge", s0, s1, s1}, os.Stdout); err == nil {
		t.Fatal("merge accepted overlapping shards")
	}

	// A shard of a different configuration must be rejected by fingerprint.
	tr0 := filepath.Join(dir, "tr0.jsonl")
	tr1 := filepath.Join(dir, "tr1.jsonl")
	if err := run([]string{"run", "-trials", "10", "-shard", "0/2", "-seed", "1", "-o", tr0}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"run", "-trials", "10", "-shard", "1/2", "-p", "0.4", "-loss", "prob", "-seed", "1", "-o", tr1}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"merge", tr0, tr1}, os.Stdout); err == nil {
		t.Fatal("merge accepted shards of two different configurations")
	}

	// Same parameters but a different base -seed is also a different sweep:
	// the fingerprint covers the sweep seed, so the mix must be rejected.
	sd1 := filepath.Join(dir, "sd1.jsonl")
	if err := run([]string{"run", "-trials", "10", "-shard", "1/2", "-seed", "2", "-o", sd1}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"merge", tr0, sd1}, os.Stdout); err == nil {
		t.Fatal("merge accepted shards run with different base seeds")
	}
}

// TestRunRejectsBadInput covers the CLI's own validation.
func TestRunRejectsBadInput(t *testing.T) {
	for _, tt := range []struct {
		name string
		args []string
	}{
		{"no subcommand", nil},
		{"unknown subcommand", []string{"frobnicate"}},
		{"no mode", []string{"run"}},
		{"both modes", []string{"run", "-exp", "T3", "-trials", "5"}},
		{"bad shard", []string{"run", "-exp", "T3", "-shard", "2/2"}},
		{"shard trailing garbage", []string{"run", "-exp", "T3", "-shard", "1/2/3"}},
		{"shard not numeric", []string{"run", "-exp", "T3", "-shard", "a/b"}},
		{"unknown experiment", []string{"run", "-exp", "T6"}},
		{"merge without files", []string{"merge"}},
	} {
		t.Run(tt.name, func(t *testing.T) {
			if err := run(tt.args, os.Stdout); err == nil {
				t.Fatal("bad input accepted")
			}
		})
	}
}
