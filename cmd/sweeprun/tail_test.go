package main

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"adhocconsensus/internal/cli"
)

func TestTailURL(t *testing.T) {
	cases := []struct{ addr, want string }{
		{":9190", "http://127.0.0.1:9190/jobs/3/events"},
		{"host:9190", "http://host:9190/jobs/3/events"},
		{"http://host:9190", "http://host:9190/jobs/3/events"},
		{"http://host:9190/", "http://host:9190/jobs/3/events"},
	}
	for _, c := range cases {
		if got := tailURL(c.addr, "3"); got != c.want {
			t.Errorf("tailURL(%q) = %q, want %q", c.addr, got, c.want)
		}
	}
}

const cannedStream = "event: journal\n" +
	"data: {\"seq\":1,\"t\":10,\"ev\":\"job.begin\",\"span\":1,\"job\":3}\n" +
	"\n" +
	"event: journal\n" +
	"data: {\"seq\":2,\"t\":11,\"ev\":\"quarantine\",\"job\":3,\"trial\":7,\"cause\":\"panic\"}\n" +
	"\n" +
	"event: record\n" +
	"data: {\"schema\":1,\"exp\":\"trials\",\"i\":0,\"seed\":42,\"rounds\":9,\"decided\":true}\n" +
	"\n" +
	"event: lagged\n" +
	"data: {\"dropped\":4}\n" +
	"\n" +
	"event: eof\n" +
	"data: {\"state\":\"done\"}\n" +
	"\n"

func TestTailStreamRendersFrames(t *testing.T) {
	var out bytes.Buffer
	if err := tailStream(strings.NewReader(cannedStream), &out, false); err != nil {
		t.Fatalf("tailStream: %v", err)
	}
	for _, want := range []string{
		"job.begin",
		"quarantine",
		"trial=7",
		"cause=panic",
		"record  trial=0 (trials) seed=42 rounds=9 decided=true",
		"lagged  4 journal event(s) dropped",
		"eof     job done",
	} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("rendered stream missing %q:\n%s", want, out.String())
		}
	}
}

func TestTailStreamRawMode(t *testing.T) {
	var out bytes.Buffer
	if err := tailStream(strings.NewReader(cannedStream), &out, true); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "journal\t{\"seq\":1") ||
		!strings.Contains(out.String(), "eof\t{\"state\":\"done\"}") {
		t.Fatalf("raw mode output:\n%s", out.String())
	}
}

func TestTailStreamWithoutEOFIsAnError(t *testing.T) {
	var out bytes.Buffer
	err := tailStream(strings.NewReader("event: journal\ndata: {\"seq\":1,\"ev\":\"x\"}\n\n"), &out, false)
	if err == nil || cli.ExitCodeOf(err) != exitSink {
		t.Fatalf("truncated stream: err %v (exit %d), want sink-class failure", err, cli.ExitCodeOf(err))
	}
}

func TestTailCmdAgainstServer(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/jobs/3/events" {
			http.NotFound(w, r)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		fmt.Fprint(w, cannedStream)
	}))
	defer srv.Close()
	addr := strings.TrimPrefix(srv.URL, "http://")

	var out bytes.Buffer
	if err := tailCmd(context.Background(), []string{addr, "3"}, &out); err != nil {
		t.Fatalf("tail: %v", err)
	}
	if !strings.Contains(out.String(), "eof     job done") {
		t.Fatalf("tail output:\n%s", out.String())
	}

	// A missing job surfaces the daemon's status as a rejection.
	err := tailCmd(context.Background(), []string{addr, "999"}, &out)
	if err == nil || cli.ExitCodeOf(err) != exitReject {
		t.Fatalf("missing job: err %v, want reject-class failure", err)
	}
	if err := tailCmd(context.Background(), []string{addr, "not-a-number"}, &out); err == nil {
		t.Fatal("bad job id accepted")
	}
	if err := tailCmd(context.Background(), []string{addr}, &out); err == nil {
		t.Fatal("missing args accepted")
	}
}
