package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"adhocconsensus/internal/events"
	"adhocconsensus/internal/sink"
)

// tailCmd is the "tail" subcommand: the terminal client of sweepd's
// GET /jobs/{id}/events stream. It renders journal events through the
// shared events.Event.Format and per-trial records as one-line summaries;
// -json passes the raw JSONL data through instead. The command returns when
// the daemon closes the stream with its eof event (the job is terminal) or
// the user interrupts — an interrupt mid-tail is a clean exit, the stream
// is read-only.
func tailCmd(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun tail", flag.ContinueOnError)
	raw := fs.Bool("json", false, "print raw SSE frames (TYPE<TAB>JSONL) instead of the human rendering")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("usage: sweeprun tail [-json] <addr> <job-id> (addr as host:port or :port)")
	}
	addr, idStr := fs.Arg(0), fs.Arg(1)
	if _, err := strconv.ParseInt(idStr, 10, 64); err != nil {
		return fmt.Errorf("bad job id %q", idStr)
	}
	url := tailURL(addr, idStr)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil
		}
		return withExit(exitSink, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return withExit(exitReject, fmt.Errorf("%s: %s: %s", url, resp.Status, strings.TrimSpace(string(body))))
	}
	err = tailStream(resp.Body, out, *raw)
	if ctx.Err() != nil {
		return nil
	}
	return err
}

// tailURL resolves the user-facing address forms (":9190", "host:9190",
// "http://host:9190") to the job's event-stream URL.
func tailURL(addr, id string) string {
	if strings.HasPrefix(addr, ":") {
		addr = "127.0.0.1" + addr
	}
	if !strings.Contains(addr, "://") {
		addr = "http://" + addr
	}
	return strings.TrimRight(addr, "/") + "/jobs/" + id + "/events"
}

// tailStream decodes the SSE framing — "event:" type lines, single-line
// "data:" payloads, blank-line dispatch — until eof or stream end. A stream
// that ends without the daemon's eof event (daemon killed, connection cut)
// is reported as a sink-layer failure.
func tailStream(r io.Reader, out io.Writer, raw bool) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var typ, data string
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if typ != "" {
				done := renderFrame(out, typ, data, raw)
				if done {
					return nil
				}
			}
			typ, data = "", ""
		case strings.HasPrefix(line, "event: "):
			typ = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		}
	}
	if err := sc.Err(); err != nil {
		return withExit(exitSink, err)
	}
	return withExit(exitSink, fmt.Errorf("event stream ended without eof — daemon gone?"))
}

// renderFrame prints one SSE frame and reports whether it closed the
// stream.
func renderFrame(out io.Writer, typ, data string, raw bool) (done bool) {
	if raw {
		fmt.Fprintf(out, "%s\t%s\n", typ, data)
		return typ == "eof"
	}
	switch typ {
	case "journal":
		e, err := events.ParseEvent([]byte(data))
		if err != nil {
			fmt.Fprintf(out, "journal? %s\n", data)
			return false
		}
		fmt.Fprintln(out, e.Format())
	case "record":
		var rec sink.Record
		if err := json.Unmarshal([]byte(data), &rec); err != nil {
			fmt.Fprintf(out, "record? %s\n", data)
			return false
		}
		status := fmt.Sprintf("rounds=%d decided=%t", rec.Rounds, rec.AllDecided)
		if rec.Err != "" {
			status = "err=" + strconv.Quote(rec.Err)
		}
		fmt.Fprintf(out, "record  trial=%d (%s) seed=%d %s\n", rec.Index, rec.Exp, rec.Seed, status)
	case "lagged":
		var l struct {
			Dropped uint64 `json:"dropped"`
		}
		_ = json.Unmarshal([]byte(data), &l)
		fmt.Fprintf(out, "lagged  %d journal event(s) dropped (slow consumer)\n", l.Dropped)
	case "eof":
		var e struct {
			State string `json:"state"`
		}
		_ = json.Unmarshal([]byte(data), &e)
		fmt.Fprintf(out, "eof     job %s\n", e.State)
		return true
	default:
		fmt.Fprintf(out, "%s\t%s\n", typ, data)
	}
	return false
}
