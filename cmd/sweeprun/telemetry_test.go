package main

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"adhocconsensus/internal/telemetry"
)

// TestRunWritesValidReport: a -o run emits <out>.report.json by default, the
// document passes the schema validator, and its accounting matches the run.
func TestRunWritesValidReport(t *testing.T) {
	shard := filepath.Join(t.TempDir(), "t8.jsonl")
	var out strings.Builder
	if err := runCLI([]string{"run", "-exp", "T8", "-shard", "0/1", "-o", shard}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "report: "+shard+".report.json") {
		t.Fatalf("run did not announce the report:\n%s", out.String())
	}
	data, err := os.ReadFile(shard + ".report.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ParseReport(data)
	if err != nil {
		t.Fatalf("emitted report fails its own validator: %v\n%s", err, data)
	}
	if rep.Command != "sweeprun run" || rep.Status != telemetry.StatusOK {
		t.Fatalf("report command/status = %q/%q", rep.Command, rep.Status)
	}
	if rep.Trials.Planned == 0 || rep.Trials.Executed != rep.Trials.Planned || rep.Trials.Salvaged != 0 {
		t.Fatalf("report trial accounting: %+v", rep.Trials)
	}
	if len(rep.Segments) != 1 || rep.Segments[0].Name != "T8" || rep.Segments[0].RecordBytes == 0 {
		t.Fatalf("report segments: %+v", rep.Segments)
	}
	fi, err := os.Stat(shard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Segments[0].RecordBytes != uint64(fi.Size()) {
		t.Fatalf("segment record_bytes %d, shard file holds %d bytes", rep.Segments[0].RecordBytes, fi.Size())
	}
	h, ok := rep.Histograms["sim.trial.wall_ns"]
	if !ok || h.Count < uint64(rep.Trials.Executed) {
		t.Fatalf("report missing trial wall-time histogram: %+v", rep.Histograms)
	}
	if v, ok := rep.Metrics["sim.trials"].(float64); !ok || v < float64(rep.Trials.Executed) {
		t.Fatalf("report metrics sim.trials = %v, want >= %d", rep.Metrics["sim.trials"], rep.Trials.Executed)
	}
	// The summary subcommand accepts what run emits.
	var sum strings.Builder
	if err := runCLI([]string{"report", shard + ".report.json"}, &sum); err != nil {
		t.Fatalf("sweeprun report rejected the emitted report: %v", err)
	}
	if !strings.Contains(sum.String(), "status=ok") {
		t.Fatalf("report summary:\n%s", sum.String())
	}
}

// TestRunReportQuarantineByCause: deadline-quarantined trials land in the
// report's by-cause split and flip the status to trial-errors.
func TestRunReportQuarantineByCause(t *testing.T) {
	shard := filepath.Join(t.TempDir(), "shard.jsonl")
	err := runCLI([]string{"run", "-trials", "3",
		"-alg", "bitbybit", "-loss", "drop", "-cst", "0",
		"-rounds", fmt.Sprint(1 << 30), "-trialtimeout", "25ms",
		"-seed", "3", "-o", shard}, os.Stdout)
	if err == nil || exitCodeOf(err) != exitTrial {
		t.Fatalf("err %v (code %d), want per-trial errors", err, exitCodeOf(err))
	}
	data, err := os.ReadFile(shard + ".report.json")
	if err != nil {
		t.Fatal(err)
	}
	rep, err := telemetry.ParseReport(data)
	if err != nil {
		t.Fatalf("quarantine report fails validation: %v\n%s", err, data)
	}
	if rep.Status != telemetry.StatusTrialErrors {
		t.Fatalf("report status %q, want %q", rep.Status, telemetry.StatusTrialErrors)
	}
	q := rep.Trials.Quarantined
	if q.Total != 3 || q.Deadline != 3 || q.Panic != 0 || q.Other != 0 {
		t.Fatalf("quarantine split %+v, want 3 deadline", q)
	}
}

// TestByteIdentityAcrossWorkersWithTelemetry pins the tentpole's read-only
// contract end to end: with telemetry live (report always, plus the HTTP
// endpoint on one of the runs), the shard bytes are identical at 1, 4, and
// GOMAXPROCS workers.
func TestByteIdentityAcrossWorkersWithTelemetry(t *testing.T) {
	dir := t.TempDir()
	var golden []byte
	for i, w := range []string{"1", "4", "0"} { // 0 selects GOMAXPROCS
		path := filepath.Join(dir, fmt.Sprintf("w%s.jsonl", w))
		args := []string{"run", "-trials", "500", "-seed", "9", "-workers", w, "-o", path}
		if i == 0 {
			args = append(args, "-telemetry-addr", "127.0.0.1:0")
		}
		if err := runCLI(args, os.Stdout); err != nil {
			t.Fatalf("workers=%s: %v", w, err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if golden == nil {
			golden = data
			continue
		}
		if !bytes.Equal(golden, data) {
			t.Fatalf("workers=%s: shard bytes differ from workers=1 with telemetry enabled", w)
		}
		rep, err := os.ReadFile(path + ".report.json")
		if err != nil {
			t.Fatal(err)
		}
		if _, err := telemetry.ParseReport(rep); err != nil {
			t.Fatalf("workers=%s report invalid: %v", w, err)
		}
	}
}

// TestReportFlagControlsEmission: -report none suppresses the document,
// -report PATH redirects it.
func TestReportFlagControlsEmission(t *testing.T) {
	dir := t.TempDir()
	shard := filepath.Join(dir, "a.jsonl")
	if err := runCLI([]string{"run", "-exp", "T8", "-shard", "0/1", "-o", shard, "-report", "none"}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(shard + ".report.json"); !os.IsNotExist(err) {
		t.Fatalf("-report none still wrote the default report (stat err %v)", err)
	}
	custom := filepath.Join(dir, "custom.json")
	if err := runCLI([]string{"run", "-exp", "T8", "-shard", "0/1", "-o", shard, "-report", custom}, os.Stdout); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(custom)
	if err != nil {
		t.Fatalf("-report PATH not honored: %v", err)
	}
	if _, err := telemetry.ParseReport(data); err != nil {
		t.Fatal(err)
	}
}

// TestReportCmdRejects: garbage exits 4, a missing file 3 — the same codes
// merge uses for its inputs.
func TestReportCmdRejects(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "bad.report.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	err := runCLI([]string{"report", bad}, io.Discard)
	if err == nil || exitCodeOf(err) != exitReject {
		t.Fatalf("garbage report: err %v (code %d), want %d", err, exitCodeOf(err), exitReject)
	}
	err = runCLI([]string{"report", filepath.Join(t.TempDir(), "missing.json")}, io.Discard)
	if err == nil || exitCodeOf(err) != exitSink {
		t.Fatalf("missing report: err %v (code %d), want %d", err, exitCodeOf(err), exitSink)
	}
	if err := runCLI([]string{"report"}, io.Discard); err == nil {
		t.Fatal("report with no files must be a usage error")
	}
}

// TestHelpExitcodes: the exit-code table is printable on demand and unknown
// topics are usage errors.
func TestHelpExitcodes(t *testing.T) {
	var out strings.Builder
	if err := runCLI([]string{"help", "exitcodes"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"0  success", "2  the sweep completed", "5  clean interrupt"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("exit-code table missing %q:\n%s", want, out.String())
		}
	}
	out.Reset()
	if err := runCLI([]string{"help"}, &out); err != nil || !strings.Contains(out.String(), "exitcodes") {
		t.Fatalf("bare help: err %v, out:\n%s", err, out.String())
	}
	if err := runCLI([]string{"help", "nope"}, io.Discard); err == nil {
		t.Fatal("unknown help topic accepted")
	}
}
