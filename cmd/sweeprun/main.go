// Command sweeprun drives the record→replay→verify loop of the streaming
// result pipeline (internal/sink + internal/replay) across machines.
//
// "sweeprun run" executes the i-of-k shard of a sweep and streams one JSONL
// record per trial: the scenario grids of the paper's experiment tables and
// the work-itemized bespoke pipelines (-exp; T1..T5, T8, A1, A2 shard as
// scenario grids, T6, T7, T9, A3, M1 as universal work items), or an
// N-trial sweep of one configuration (-trials, with the same configuration
// flags as consensus-sim). Trial seeds depend only on the sweep seed and
// the GLOBAL trial index, never on the shard layout, so k workers running
// "run -shard 0/k .. (k-1)/k" produce files whose union is byte-identical
// to a single machine's run.
//
// "sweeprun merge" reads any set of shard files, verifies they form a
// complete, non-overlapping, fingerprint-consistent cover, and renders
// exactly what the in-process single-machine path produces (golden-tested
// byte-identical). When verification rejects the set, it prints a per-shard
// verdict identifying the offending file(s) and exits non-zero; -quiet
// reduces success output to one PASS/FAIL line per experiment for CI.
//
// "sweeprun replay" renders the same tables from recorded results alone —
// no simulation runs; the engine is never invoked. It is the
// render-without-rerun face of internal/replay: re-render a month-old run
// from its merged JSONL, byte-identical to the day it executed.
//
// "sweeprun verify" is the forensic side: it flags recorded trials worth
// auditing (-flag undecided,violations,slowest=K,recheck), re-executes each
// flagged seed through the engine at full trace fidelity, validates the
// fresh columnar trace against the recorded decision digest and the formal
// model's legality constraints, and (with -bundle) writes per-trial trace
// bundles. Any failed audit exits non-zero.
//
// Examples:
//
//	sweeprun run -exp T3 -shard 0/2 -o shard0.jsonl
//	sweeprun run -exp T3 -shard 1/2 -o shard1.jsonl
//	sweeprun merge shard0.jsonl shard1.jsonl
//	sweeprun replay shard0.jsonl shard1.jsonl   # render, no simulation
//	sweeprun verify -flag violations,slowest=3 shard0.jsonl shard1.jsonl
//
//	sweeprun run -exp M1 -shard 0/4 -o m1-s0.jsonl   # bespoke pipelines shard too
//
//	sweeprun run -trials 10000 -shard 0/4 -alg bitbybit -values 3,7,7,1 \
//	    -loss prob -p 0.4 -seed 7 -o t0.jsonl   # ... one worker per shard
//	sweeprun merge t0.jsonl t1.jsonl t2.jsonl t3.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/experiments"
	"adhocconsensus/internal/replay"
	"adhocconsensus/internal/sim"
	"adhocconsensus/internal/sink"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sweeprun run|merge|replay|verify [flags]")
	}
	switch args[0] {
	case "run":
		return runShard(args[1:], out)
	case "merge":
		return merge(args[1:], out)
	case "replay":
		return replayCmd(args[1:], out)
	case "verify":
		return verifyCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run, merge, replay, or verify)", args[0])
	}
}

// parseShard decodes "-shard i/k", strictly: trailing garbage (a typo like
// "1/2/3") must error rather than silently run the wrong partition.
func parseShard(s string) (shard, shards int, err error) {
	i, k, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", s)
	}
	if shard, err = strconv.Atoi(i); err == nil {
		shards, err = strconv.Atoi(k)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", s)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("bad -shard %q: shard must be in [0,%d)", s, shards)
	}
	return shard, shards, nil
}

// runShard is the "run" subcommand: execute one shard, stream JSONL.
func runShard(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun run", flag.ContinueOnError)
	cf := cli.RegisterConfig(fs)
	var (
		expList  = fs.String("exp", "", "comma-separated experiments (T1..T9, A1..A3, M1) or 'all'")
		trials   = fs.Int("trials", 0, "instead of -exp: sweep this many trials of the flagged configuration")
		shardStr = fs.String("shard", "0/1", "shard to execute, as i/k")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		output   = fs.String("o", "", "output JSONL file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shard, shards, err := parseShard(*shardStr)
	if err != nil {
		return err
	}
	if *trials < 0 {
		return fmt.Errorf("-trials %d must be positive", *trials)
	}
	if (*expList == "") == (*trials == 0) {
		return fmt.Errorf("pick exactly one of -exp or -trials")
	}

	w := out
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *trials > 0 {
		cfg, err := cf.Config()
		if err != nil {
			return err
		}
		return streamTrialsShard(cfg, *trials, *workers, shard, shards, w)
	}

	// An experiment shard runner: a scenario grid or a work-item pipeline.
	type expRunner struct {
		name string
		run  func() error
	}
	var exps []expRunner
	add := func(name string) error {
		if e, ok := experiments.GridExperimentByName(name); ok {
			exps = append(exps, expRunner{name, func() error {
				return streamExperimentShard(e, shard, shards, *workers, w)
			}})
			return nil
		}
		if e, ok := experiments.WorkExperimentByName(name); ok {
			exps = append(exps, expRunner{name, func() error {
				return streamWorkShard(e, shard, shards, *workers, w)
			}})
			return nil
		}
		return fmt.Errorf("no experiment %q (grids: T1..T5, T8, A1, A2; work pipelines: T6, T7, T9, A3, M1)", name)
	}
	if *expList == "all" {
		for _, e := range experiments.GridExperiments() {
			if err := add(e.Name); err != nil {
				return err
			}
		}
		for _, e := range experiments.WorkExperiments() {
			if err := add(e.Name); err != nil {
				return err
			}
		}
	} else {
		for _, name := range strings.Split(*expList, ",") {
			if err := add(strings.TrimSpace(name)); err != nil {
				return err
			}
		}
	}
	for _, e := range exps {
		if err := e.run(); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
	}
	return nil
}

// streamExperimentShard runs one experiment grid's shard into a JSONL
// stream.
func streamExperimentShard(e experiments.GridExperiment, shard, shards, workers int, w io.Writer) error {
	scenarios, _, err := e.Build()
	if err != nil {
		return err
	}
	shardTrials, err := sim.ShardScenarios(scenarios, shard, shards)
	if err != nil {
		return err
	}
	// Precompute params once per grid point: the sink's lookup runs per
	// trial on the streaming path.
	params := make([]sink.Params, len(scenarios))
	for i, s := range scenarios {
		params[i] = sink.ParamsOf(s)
	}
	j := sink.NewJSONL(w)
	j.Exp = e.Name
	j.Params = func(i int) sink.Params { return params[i] }
	if err := (sim.Runner{Workers: workers}).SweepTrialsTo(shardTrials, j); err != nil {
		return err
	}
	return j.Flush()
}

// streamWorkShard runs one work-item pipeline's shard into a JSONL stream:
// the bespoke analog of streamExperimentShard. Items execute on the worker
// pool; records stream in item order.
func streamWorkShard(e experiments.WorkExperiment, shard, shards, workers int, w io.Writer) error {
	items, runItem, _, err := e.Build()
	if err != nil {
		return err
	}
	shardItems, err := experiments.ShardItems(items, shard, shards)
	if err != nil {
		return err
	}
	outs := make([]string, len(shardItems))
	errs := make([]error, len(shardItems))
	(sim.Runner{Workers: workers}).Map(len(shardItems), func(i int) {
		outs[i], errs[i] = runItem(shardItems[i])
	})
	j := sink.NewJSONL(w)
	for i, item := range shardItems {
		if errs[i] != nil {
			return fmt.Errorf("item %d: %w", item.Index, errs[i])
		}
		if err := j.WriteRecord(sink.RecordOfItem(e.Name, item, outs[i])); err != nil {
			return err
		}
	}
	return j.Flush()
}

// jsonlTrials adapts the public per-trial stream to JSONL records, reusing
// a values scratch so million-trial shards stay allocation-free per record
// like the sim-sweep path.
type jsonlTrials struct {
	j      *sink.JSONL
	params sink.Params
	vals   []uint64
}

func (s *jsonlTrials) Consume(r adhocconsensus.TrialResult) error {
	rec := sink.Record{
		Fingerprint:       r.Fingerprint,
		Index:             r.Trial,
		Seed:              r.Seed,
		Rounds:            r.Rounds,
		AllDecided:        r.Decided,
		Decisions:         r.Decisions,
		LastDecisionRound: r.LastDecisionRound,
		AgreementOK:       r.AgreementOK,
		ValidityOK:        r.ValidityOK,
		TerminationOK:     r.TerminationOK,
		Params:            s.params,
	}
	s.vals = s.vals[:0]
	for _, v := range r.DecidedValues {
		s.vals = append(s.vals, uint64(v))
	}
	rec.DecidedValues = s.vals
	return s.j.WriteRecord(rec)
}

// streamTrialsShard runs one configuration-sweep shard into JSONL via the
// public streaming API.
func streamTrialsShard(cfg adhocconsensus.Config, trials, workers, shard, shards int, w io.Writer) error {
	j := sink.NewJSONL(w)
	j.Exp = "trials"
	if err := cfg.StreamTrials(trials, workers, shard, shards,
		&jsonlTrials{j: j, params: cli.RecordParams(cfg)}); err != nil {
		return err
	}
	return j.Flush()
}

// shardFile is one input file's read outcome, kept for per-shard verdicts.
type shardFile struct {
	path string
	recs []sink.Record
	err  error
}

// readShardFiles reads every input file, continuing past failures so a bad
// shard set produces one verdict per file instead of stopping at the first.
func readShardFiles(paths []string) (files []shardFile, all []sink.Record, failed int) {
	for _, path := range paths {
		sf := shardFile{path: path}
		f, err := os.Open(path)
		if err != nil {
			sf.err = err
		} else {
			sf.recs, sf.err = sink.ReadRecords(f)
			f.Close()
		}
		if sf.err != nil {
			failed++
		} else {
			all = append(all, sf.recs...)
		}
		files = append(files, sf)
	}
	return files, all, failed
}

// printShardVerdicts writes one line per input file: OK with its record
// count, or the rejection reason. A non-empty exp restricts the count to
// the experiment group being diagnosed, so a multi-experiment shard file
// does not overstate what it contributes to the rejected group.
func printShardVerdicts(out io.Writer, files []shardFile, exp string, verdict func(sf shardFile) error) {
	for _, sf := range files {
		err := sf.err
		if err == nil && verdict != nil {
			err = verdict(sf)
		}
		if err != nil {
			fmt.Fprintf(out, "  shard %s: REJECTED: %v\n", sf.path, err)
			continue
		}
		n := len(sf.recs)
		if exp != "" {
			n = 0
			for _, rec := range sf.recs {
				if rec.Exp == exp {
					n++
				}
			}
		}
		fmt.Fprintf(out, "  shard %s: ok (%d records)\n", sf.path, n)
	}
}

// experimentShardVerdict checks one file's records for one experiment
// against this build's derivation — a partial-cover version of the merge
// guards, used to point at the offending shard when the merged set is
// rejected.
func experimentShardVerdict(name string, sf shardFile) error {
	var recs []sink.Record
	for _, rec := range sf.recs {
		if rec.Exp == name {
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		return nil // carries nothing for this experiment
	}
	seen := make(map[int]bool, len(recs))
	for _, rec := range recs {
		if seen[rec.Index] {
			return fmt.Errorf("duplicate record for trial %d", rec.Index)
		}
		seen[rec.Index] = true
	}
	if e, ok := experiments.GridExperimentByName(name); ok {
		scenarios, _, err := e.Build()
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(scenarios) {
				return fmt.Errorf("trial %d outside this build's %d-trial grid", rec.Index, len(scenarios))
			}
			if fp := sink.ParamsOf(scenarios[rec.Index]).Fingerprint(); rec.Fingerprint != fp {
				return fmt.Errorf("trial %d fingerprint %s does not match this build's grid (%s)", rec.Index, rec.Fingerprint, fp)
			}
			if rec.Seed != scenarios[rec.Index].Seed {
				return fmt.Errorf("trial %d seed %d does not match this build's grid (%d)", rec.Index, rec.Seed, scenarios[rec.Index].Seed)
			}
		}
		return nil
	}
	if e, ok := experiments.WorkExperimentByName(name); ok {
		items, _, _, err := e.Build()
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(items) {
				return fmt.Errorf("item %d outside this build's %d-item pipeline", rec.Index, len(items))
			}
			item := items[rec.Index]
			if rec.Item != item.Kind || rec.ItemParams != item.Params || rec.Fingerprint != item.Fingerprint() || rec.Seed != item.Seed {
				return fmt.Errorf("item %d does not match this build's pipeline (recorded %s(%s) fp=%s seed=%d)",
					rec.Index, rec.Item, rec.ItemParams, rec.Fingerprint, rec.Seed)
			}
		}
		return nil
	}
	return fmt.Errorf("no experiment %q in this build", name)
}

// trialsShardVerdict builds a per-file verdict for a rejected "trials"
// group. A configuration sweep has no build-side derivation to check
// against (the producing Config is not in the shard files), so the verdict
// is relative: every file must be internally consistent and carry the
// majority fingerprint across the whole set — which names the foreign
// shard(s) when configurations were mixed.
func trialsShardVerdict(files []shardFile) func(sf shardFile) error {
	counts := make(map[string]int)
	for _, sf := range files {
		seen := make(map[string]bool)
		for _, rec := range sf.recs {
			if rec.Exp == "trials" && !seen[rec.Fingerprint] {
				seen[rec.Fingerprint] = true
				counts[rec.Fingerprint]++
			}
		}
	}
	majority := ""
	for fp, n := range counts {
		if n > counts[majority] || (n == counts[majority] && fp > majority) {
			majority = fp
		}
	}
	return func(sf shardFile) error {
		var fp string
		for _, rec := range sf.recs {
			if rec.Exp != "trials" {
				continue
			}
			switch {
			case fp == "":
				fp = rec.Fingerprint
			case rec.Fingerprint != fp:
				return fmt.Errorf("mixes configurations (fingerprints %s and %s)", fp, rec.Fingerprint)
			}
		}
		if fp != "" && fp != majority {
			return fmt.Errorf("fingerprint %s differs from the set's majority %s — different configuration or base seed", fp, majority)
		}
		return nil
	}
}

// merge is the "merge" subcommand: fold shard files into tables and stats.
// A rejected shard set prints per-shard verdicts and exits non-zero.
func merge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun merge", flag.ContinueOnError)
	quiet := fs.Bool("quiet", false, "per-experiment PASS/FAIL lines instead of full tables (CI use)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return mergeRender(fs.Args(), out, *quiet)
}

// replayCmd is the "replay" subcommand: render-without-rerun. It folds
// recorded results through the same verified path as merge — byte-identical
// tables, no simulation (the engine is never invoked on this path).
func replayCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun replay", flag.ContinueOnError)
	quiet := fs.Bool("quiet", false, "per-experiment PASS/FAIL lines instead of full tables (CI use)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return mergeRender(fs.Args(), out, *quiet)
}

// mergeRender is the shared body of merge and replay.
func mergeRender(paths []string, out io.Writer, quiet bool) error {
	if len(paths) == 0 {
		return fmt.Errorf("need at least one shard file")
	}
	files, all, failedReads := readShardFiles(paths)
	if failedReads > 0 {
		printShardVerdicts(out, files, "", nil)
		return fmt.Errorf("%d of %d shard file(s) unreadable", failedReads, len(files))
	}
	run := replay.Group(all)
	if len(run.Order) == 0 {
		return fmt.Errorf("no records in %d file(s)", len(files))
	}
	failed := 0
	for _, name := range run.Order {
		group := run.Groups[name]
		if name == "trials" {
			if err := mergeTrials(group, out, quiet); err != nil {
				fmt.Fprintln(out, "trials: shard set rejected")
				printShardVerdicts(out, files, "trials", trialsShardVerdict(files))
				return fmt.Errorf("trials: %w", err)
			}
			continue
		}
		table, err := replay.RenderExperiment(name, group)
		if err != nil {
			fmt.Fprintf(out, "%s: shard set rejected\n", name)
			printShardVerdicts(out, files, name, func(sf shardFile) error {
				return experimentShardVerdict(name, sf)
			})
			return fmt.Errorf("%s: %w", name, err)
		}
		if quiet {
			verdict := "PASS"
			if !table.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(out, "%s: %s\n", name, verdict)
		} else {
			fmt.Fprintln(out, table)
		}
		if !table.Pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their internal checks", failed)
	}
	return nil
}

// trialResultsOf reconstructs the public TrialResults of a merged
// configuration-sweep group, verifying the single-fingerprint invariant.
func trialResultsOf(recs []sink.Record) ([]adhocconsensus.TrialResult, error) {
	results, err := sink.Merge(recs)
	if err != nil {
		return nil, err
	}
	// All trials of one configuration share its fingerprint; reject mixed
	// files.
	fp := recs[0].Fingerprint
	for _, rec := range recs {
		if rec.Fingerprint != fp {
			return nil, fmt.Errorf("trial %d fingerprint %s differs from %s — shards from different configurations",
				rec.Index, rec.Fingerprint, fp)
		}
	}
	trs := make([]adhocconsensus.TrialResult, len(results))
	for i, r := range results {
		trs[i] = adhocconsensus.TrialResult{
			Trial:             r.Index,
			Seed:              r.Seed,
			Fingerprint:       fp,
			Rounds:            r.Rounds,
			Decided:           r.AllDecided,
			Decisions:         r.Decisions,
			DecidedValues:     r.DecidedValues,
			LastDecisionRound: r.LastDecisionRound,
			AgreementOK:       r.AgreementOK,
			ValidityOK:        r.ValidityOK,
			TerminationOK:     r.TerminationOK,
		}
	}
	return trs, nil
}

// mergeTrials folds configuration-sweep records into the statistics and
// seed-provenance report consensus-sim -trials prints.
func mergeTrials(recs []sink.Record, out io.Writer, quiet bool) error {
	trs, err := trialResultsOf(recs)
	if err != nil {
		return err
	}
	st := adhocconsensus.TrialStatsOf(trs)
	if quiet {
		fmt.Fprintf(out, "trials: %d merged, %d decided, %d violation(s)\n",
			st.Trials, st.Decided, st.AgreementViolations)
		return nil
	}
	alg, err := cli.ParseAlgorithm(recs[0].Params.Algorithm)
	if err != nil {
		return fmt.Errorf("records carry no usable algorithm param: %w", err)
	}
	cli.PrintTrialStats(out, alg, recs[0].Params.N, st)
	cli.PrintSeedProvenance(out, trs)
	return nil
}

// parseSelector decodes the -flag spec: comma-separated selector names.
func parseSelector(spec string) (replay.Selector, error) {
	var sel replay.Selector
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		switch {
		case part == "undecided":
			sel.Undecided = true
		case part == "violations":
			sel.Violations = true
		case part == "recheck":
			sel.Recheck = true
		case strings.HasPrefix(part, "slowest="):
			k, err := strconv.Atoi(strings.TrimPrefix(part, "slowest="))
			if err != nil || k < 1 {
				return sel, fmt.Errorf("bad selector %q (want slowest=K, K >= 1)", part)
			}
			sel.TopSlowest = k
		case part == "slowest":
			sel.TopSlowest = 1
		default:
			return sel, fmt.Errorf("unknown selector %q (want undecided, violations, slowest[=K], recheck)", part)
		}
	}
	return sel, nil
}

// verifyCmd is the "verify" subcommand: forensic re-execution of flagged
// recorded trials at full trace fidelity.
func verifyCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun verify", flag.ContinueOnError)
	cf := cli.RegisterConfig(fs)
	var (
		flagSpec  = fs.String("flag", "undecided,violations,slowest=1", "trial selectors: undecided, violations, slowest[=K], recheck")
		bundleDir = fs.String("bundle", "", "write per-trial trace bundles into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("verify needs at least one shard file")
	}
	sel, err := parseSelector(*flagSpec)
	if err != nil {
		return err
	}
	if *bundleDir != "" {
		if err := os.MkdirAll(*bundleDir, 0o755); err != nil {
			return err
		}
	}
	run, err := replay.LoadFiles(fs.Args()...)
	if err != nil {
		return err
	}
	failedAudits := 0
	for _, name := range run.Order {
		group := run.Groups[name]
		switch {
		case name == "trials":
			n, err := verifyTrials(cf, group, sel, *bundleDir, out)
			if err != nil {
				return fmt.Errorf("trials: %w", err)
			}
			failedAudits += n
		default:
			if _, isWork := experiments.WorkExperimentByName(name); isWork {
				// Work-item outcomes are not engine digests; their audit is
				// the render-side item verification (sweeprun replay).
				fmt.Fprintf(out, "%s: work-item pipeline, per-seed re-execution not applicable (render-verify via 'sweeprun replay')\n", name)
				continue
			}
			vs, err := replay.VerifyExperiment(name, group, sel, *bundleDir != "")
			if err != nil {
				return fmt.Errorf("%s: %w", name, err)
			}
			failedAudits += reportVerifications(out, name, vs, *bundleDir)
		}
	}
	if failedAudits > 0 {
		return fmt.Errorf("%d audit(s) failed", failedAudits)
	}
	return nil
}

// verifyTrials audits a configuration-sweep group through the public
// Config.ReplayFlagged API; the configuration flags must match the recorded
// run (fingerprint-checked).
func verifyTrials(cf *cli.ConfigFlags, recs []sink.Record, sel replay.Selector, bundleDir string, out io.Writer) (failed int, err error) {
	if sel.Recheck {
		return 0, fmt.Errorf("recheck is not supported for configuration sweeps; select trials with undecided/violations/slowest instead")
	}
	cfg, err := cf.Config()
	if err != nil {
		return 0, err
	}
	trs, err := trialResultsOf(recs)
	if err != nil {
		return 0, err
	}
	reports, err := cfg.ReplayFlagged(trs, adhocconsensus.ReplaySelector{
		Undecided:  sel.Undecided,
		Violations: sel.Violations,
		TopSlowest: sel.TopSlowest,
	})
	if err != nil {
		return 0, fmt.Errorf("%w (pass the run's configuration flags to verify a -trials sweep)", err)
	}
	fmt.Fprintf(out, "trials: %d trial(s) flagged of %d\n", len(reports), len(trs))
	for _, rep := range reports {
		status, ok := auditStatus(rep.OK(), rep.Mismatch, rep.TraceError)
		if !ok {
			failed++
		}
		fmt.Fprintf(out, "  trial %d seed %d [%s]: %s\n", rep.Trial, rep.Seed, strings.Join(rep.Reasons, ","), status)
		if bundleDir != "" {
			if bundle := rep.BundleText(); bundle != "" {
				path := filepath.Join(bundleDir, fmt.Sprintf("trials-%d.txt", rep.Trial))
				if err := os.WriteFile(path, []byte(bundle), 0o644); err != nil {
					return failed, err
				}
			}
		}
		if rep.Report != nil {
			rep.Report.Execution.Release()
		}
	}
	return failed, nil
}

// auditStatus renders one audit verdict line fragment — shared by the
// experiment and trials verify reports so the two outputs cannot drift.
func auditStatus(ok bool, mismatch, traceErr string) (status string, clean bool) {
	if ok {
		return "digest ok, trace legal", true
	}
	status = "AUDIT FAILED"
	if mismatch != "" {
		status += ": " + mismatch
	}
	if traceErr != "" {
		status += ": " + traceErr
	}
	return status, false
}

// reportVerifications prints one audit line per verification and writes
// bundles; it returns how many audits failed.
func reportVerifications(out io.Writer, name string, vs []*replay.Verification, bundleDir string) (failed int) {
	fmt.Fprintf(out, "%s: %d trial(s) flagged\n", name, len(vs))
	for _, v := range vs {
		status, ok := auditStatus(v.OK(), v.Mismatch, v.TraceError)
		if !ok {
			failed++
		}
		fmt.Fprintf(out, "  trial %d (%s) seed %d [%s]: %s\n", v.Index, v.Name, v.Seed, strings.Join(v.Reasons, ","), status)
		if bundleDir != "" && v.Bundle != "" {
			path := filepath.Join(bundleDir, fmt.Sprintf("%s-%d.txt", name, v.Index))
			if err := os.WriteFile(path, []byte(v.Bundle), 0o644); err != nil {
				fmt.Fprintf(out, "  bundle %s: %v\n", path, err)
				failed++
			}
		}
	}
	return failed
}
