// Command sweeprun drives the record→replay→verify loop of the streaming
// result pipeline (internal/sink + internal/replay) across machines.
//
// "sweeprun run" executes the i-of-k shard of a sweep and streams one JSONL
// record per trial: the scenario grids of the paper's experiment tables and
// the work-itemized bespoke pipelines (-exp; T1..T5, T8, A1, A2 shard as
// scenario grids, T6, T7, T9, A3, M1 as universal work items), or an
// N-trial sweep of one configuration (-trials, with the same configuration
// flags as consensus-sim). Trial seeds depend only on the sweep seed and
// the GLOBAL trial index, never on the shard layout, so k workers running
// "run -shard 0/k .. (k-1)/k" produce files whose union is byte-identical
// to a single machine's run.
//
// A run is crash-safe end to end. A trial that panics or exceeds
// -trialtimeout does not stop the shard: it streams as a quarantine record
// (err set, digest fields zero) in its ordered slot, and the sweep
// continues. Interrupting a run (SIGINT/SIGTERM) is clean: workers stop
// claiming trials, in-flight trials drain, the JSONL tail is flushed, and
// the process exits with code 5 after printing the command that resumes the
// shard; a second signal kills the process immediately. "sweeprun run
// -resume -o FILE ..." reloads a partial shard file — including one a crash
// or SIGKILL left with a torn final line — salvages its valid record
// prefix, verifies that prefix against this build's derivation (experiment
// membership, global indices, seed schedule, fingerprints), truncates the
// torn tail, and appends only the trials not yet durable, so the finished
// file is byte-identical to an uninterrupted run's.
//
// "sweeprun merge" reads any set of shard files, verifies they form a
// complete, non-overlapping, fingerprint-consistent cover, and renders
// exactly what the in-process single-machine path produces (golden-tested
// byte-identical). When verification rejects the set, it prints a per-shard
// verdict identifying the offending file(s) and exits non-zero; -quiet
// reduces success output to one PASS/FAIL line per experiment for CI.
//
// "sweeprun replay" renders the same tables from recorded results alone —
// no simulation runs; the engine is never invoked. It is the
// render-without-rerun face of internal/replay: re-render a month-old run
// from its merged JSONL, byte-identical to the day it executed.
//
// "sweeprun verify" is the forensic side: it flags recorded trials worth
// auditing (-flag undecided,violations,slowest=K,recheck), re-executes each
// flagged seed through the engine at full trace fidelity, validates the
// fresh columnar trace against the recorded decision digest and the formal
// model's legality constraints, and (with -bundle) writes per-trial trace
// bundles. Any failed audit exits non-zero.
//
// "sweeprun tail ADDR JOB" follows a sweepd job from the terminal: it
// connects to the daemon's GET /jobs/{id}/events stream and renders the
// job's structured event journal (job/segment/trial-batch spans, admit/
// retry/salvage/quarantine/... points) interleaved with its per-trial
// records as they become durable; -json passes the raw JSONL through
// instead. Tailing a finished job replays its persisted journal. The
// stream is read-only — tailing never perturbs the job's output.
//
// A run is observable while it executes and after it finishes. "run
// -progress" renders a live stderr line (trials/s, ETA, quarantine counts
// per segment); "-quiet" suppresses it and all informational output, and
// always wins when both are set. "run -telemetry-addr :9190" serves the
// metric registry as deterministic JSON at /metrics plus the standard Go
// profiler at /debug/pprof/ for the run's duration — a host-less address
// binds loopback only, because the profiler exposes memory contents. Every
// "-o" run also writes <out>.report.json (override with -report PATH,
// disable with -report none): the machine-readable run report — timing
// breakdown per segment, latency and decision-round histograms, seed
// schedule and calibration provenance, quarantine summary by cause.
// "sweeprun report FILE..." schema-validates such reports and prints
// one-line summaries; "sweeprun help exitcodes" prints the exit-code table
// below. Telemetry is strictly read-only with respect to the record stream:
// shard files are byte-identical with and without it.
//
// Exit codes are uniform across subcommands:
//
//	0  success
//	1  usage or configuration error
//	2  the sweep completed but quarantined per-trial errors (panic, deadline)
//	3  sink/IO failure — the stream aborted, leaving a valid resumable prefix
//	4  merge/verify/resume rejected its input files
//	5  clean interrupt — in-flight trials drained, tail flushed, resumable
//
// Examples:
//
//	sweeprun run -exp T3 -shard 0/2 -o shard0.jsonl
//	sweeprun run -exp T3 -shard 1/2 -o shard1.jsonl
//	sweeprun merge shard0.jsonl shard1.jsonl
//	sweeprun replay shard0.jsonl shard1.jsonl   # render, no simulation
//	sweeprun verify -flag violations,slowest=3 shard0.jsonl shard1.jsonl
//
//	sweeprun run -exp M1 -shard 0/4 -o m1-s0.jsonl   # bespoke pipelines shard too
//
//	sweeprun run -trials 10000 -shard 0/4 -alg bitbybit -values 3,7,7,1 \
//	    -loss prob -p 0.4 -seed 7 -o t0.jsonl   # ... one worker per shard
//	sweeprun merge t0.jsonl t1.jsonl t2.jsonl t3.jsonl
//
//	sweeprun run -resume -exp T3 -shard 0/2 -o shard0.jsonl   # after a crash
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/events"
	"adhocconsensus/internal/experiments"
	"adhocconsensus/internal/jobs"
	"adhocconsensus/internal/replay"
	"adhocconsensus/internal/sink"
	"adhocconsensus/internal/telemetry"
)

// Exit codes, documented in the command comment. The table and the
// classification live in internal/cli so sweeprun and sweepd cannot drift;
// these aliases keep this package's call sites short.
const (
	exitOK        = cli.ExitOK
	exitUsage     = cli.ExitUsage
	exitTrial     = cli.ExitTrial
	exitSink      = cli.ExitSink
	exitReject    = cli.ExitReject
	exitInterrupt = cli.ExitInterrupt
)

// withExit wraps err with an explicit exit code (nil stays nil).
func withExit(code int, err error) error { return cli.WithExit(code, err) }

// exitCodeOf classifies an error chain into the documented exit codes.
func exitCodeOf(err error) int { return cli.ExitCodeOf(err) }

// isInterrupt reports whether the error chain records a cooperative
// cancellation (the sweep drained and the stream holds a valid prefix).
func isInterrupt(err error) bool { return cli.IsInterrupt(err) }

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	go func() {
		// First signal: cancel ctx, drain in-flight trials, flush, exit 5.
		// Once that is in motion, unregister — a second signal takes the
		// default disposition and kills the process immediately.
		<-ctx.Done()
		stop()
	}()
	err := run(ctx, os.Args[1:], os.Stdout)
	stop()
	if err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
	}
	os.Exit(exitCodeOf(err))
}

func run(ctx context.Context, args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sweeprun run|merge|replay|verify|report|tail|help [flags]")
	}
	switch args[0] {
	case "run":
		return runShard(ctx, args[1:], out)
	case "merge":
		return merge(args[1:], out)
	case "replay":
		return replayCmd(args[1:], out)
	case "verify":
		return verifyCmd(args[1:], out)
	case "report":
		return reportCmd(args[1:], out)
	case "tail":
		return tailCmd(ctx, args[1:], out)
	case "help":
		return helpCmd(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run, merge, replay, verify, report, tail, or help)", args[0])
	}
}

// helpCmd is the "help" subcommand: topic help beyond -h flag listings.
func helpCmd(args []string, out io.Writer) error {
	if len(args) == 0 {
		fmt.Fprint(out, "usage: sweeprun run|merge|replay|verify|report|tail|help [flags]\n\n"+
			"help topics:\n  sweeprun help exitcodes   the uniform exit-code table\n"+
			"  sweeprun help events      the event journal and sweepd's streaming endpoints\n\n"+
			"per-subcommand flags: sweeprun <subcommand> -h\n")
		return nil
	}
	switch args[0] {
	case "exitcodes":
		fmt.Fprint(out, cli.ExitCodesHelp)
		return nil
	case "events":
		fmt.Fprint(out, eventsHelp)
		return nil
	default:
		return fmt.Errorf("unknown help topic %q (want exitcodes or events)", args[0])
	}
}

// eventsHelp documents the event journal's surfaces — shared vocabulary
// between "sweeprun run -events", "sweeprun tail", and sweepd's endpoints.
const eventsHelp = `The structured event journal (internal/events) records a run's narrative:
hierarchical spans (job -> segment -> trial-batch, as <scope>.begin/.end
pairs sharing a span id) and point events (job.admit, job.dedupe,
job.evict, job.retry, job.checkpoint, job.cancel, job.quarantine, drain,
salvage, torn_tail, quarantine with cause=panic|deadline|other, sink.flush,
sink.retry), each stamped with a monotonic sequence number. It is strictly
read-only: shard files are byte-identical with the journal on or off.

  sweeprun run -events -o FILE ...   also writes FILE.events.jsonl, the
                                     durable journal of the attempt that
                                     produced FILE (job id 0 standalone)

Against a sweepd daemon (which journals every job attempt the same way):

  sweeprun tail ADDR JOB             stream GET /jobs/{JOB}/events: journal
                                     events plus per-trial records, live;
                                     a finished job replays its persisted
                                     journal (-json for raw JSONL)
  GET /jobs/{id}/results             tables rendered from durable records
                                     via internal/replay (?quiet for
                                     PASS/FAIL lines) -- no re-simulation
  GET /jobs/{id}/flagged             quarantined/undecided/violation
                                     trials as JSON (?flag= selectors:
                                     quarantined, undecided, violations,
                                     slowest[=K])
  GET /metrics?name=PREFIX           one registry subtree (e.g. events.)
`

// reportCmd is the "report" subcommand: parse and schema-validate run
// reports (<out>.report.json) and print a one-line summary per file. An
// invalid report exits 4, an unreadable one 3 — so CI can gate on report
// integrity the way merge gates on shard integrity.
func reportCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun report", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("report needs at least one run-report file (<out>.report.json)")
	}
	for _, path := range fs.Args() {
		data, err := os.ReadFile(path)
		if err != nil {
			return withExit(exitSink, err)
		}
		r, err := telemetry.ParseReport(data)
		if err != nil {
			return withExit(exitReject, fmt.Errorf("%s: %w", path, err))
		}
		fmt.Fprintf(out, "%s: %s status=%s trials %d planned / %d salvaged / %d executed / %d quarantined, %d segment(s), wall %s\n",
			path, r.Command, r.Status,
			r.Trials.Planned, r.Trials.Salvaged, r.Trials.Executed, r.Trials.Quarantined.Total,
			len(r.Segments), time.Duration(r.WallNs).Round(time.Millisecond))
	}
	return nil
}

// parseShard decodes "-shard i/k", strictly: trailing garbage (a typo like
// "1/2/3") must error rather than silently run the wrong partition.
func parseShard(s string) (shard, shards int, err error) {
	i, k, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", s)
	}
	if shard, err = strconv.Atoi(i); err == nil {
		shards, err = strconv.Atoi(k)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", s)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("bad -shard %q: shard must be in [0,%d)", s, shards)
	}
	return shard, shards, nil
}

// runShard is the "run" subcommand: execute one shard, stream JSONL,
// optionally resuming a partial shard file in place. The plan/salvage/stream
// machinery lives in internal/jobs — the same code path the sweepd daemon
// executes jobs through, which is what keeps a daemon job's output
// byte-identical to this command's.
func runShard(ctx context.Context, args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun run", flag.ContinueOnError)
	cf := cli.RegisterConfig(fs)
	var (
		expList  = fs.String("exp", "", "comma-separated experiments (T1..T9, A1..A3, M1) or 'all'")
		trials   = fs.Int("trials", 0, "instead of -exp: sweep this many trials of the flagged configuration")
		shardStr = fs.String("shard", "0/1", "shard to execute, as i/k")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		output   = fs.String("o", "", "output JSONL file (default stdout)")
		resume   = fs.Bool("resume", false, "salvage the -o file's valid record prefix, verify it against this invocation, and append only the remaining trials")
		timeout  = fs.Duration("trialtimeout", 0, "per-trial wall-clock budget; an overrunning trial is quarantined with a deadline error (0 = unbounded)")
		progress = fs.Bool("progress", false, "render a live progress line on stderr (trials/s, ETA, quarantine counts); -quiet overrides it off")
		quiet    = fs.Bool("quiet", false, "suppress informational output, including -progress (quiet always wins when both are set)")
		telAddr  = fs.String("telemetry-addr", "", "serve /metrics (JSON) and /debug/pprof/ on this address for the run's duration; a host-less address like :9190 binds loopback only")
		repPath  = fs.String("report", "", "write the machine-readable run report here; 'none' disables it (default: <out>.report.json when -o is set)")
		eventsOn = fs.Bool("events", false, "record the structured event journal; with -o it persists to <out>.events.jsonl (see 'sweeprun help events'); read-only — the shard file is byte-identical either way")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shard, shards, err := parseShard(*shardStr)
	if err != nil {
		return err
	}
	if *trials < 0 {
		return fmt.Errorf("-trials %d must be positive", *trials)
	}
	if (*expList == "") == (*trials == 0) {
		return fmt.Errorf("pick exactly one of -exp or -trials")
	}
	if *resume && *output == "" {
		return fmt.Errorf("-resume needs -o (a shard file to salvage and append to)")
	}

	// Build the invocation's plan: one segment per experiment, in request
	// order, or the single configuration-sweep segment.
	var segs []jobs.Segment
	if *trials > 0 {
		seg, err := jobs.TrialsSegment(cf, *trials, shard, shards, *workers, *timeout)
		if err != nil {
			return err
		}
		segs = append(segs, seg)
	} else {
		add := func(name string) error {
			if e, ok := experiments.GridExperimentByName(name); ok {
				seg, err := jobs.GridSegment(e, shard, shards, *workers, *timeout)
				if err != nil {
					return err
				}
				segs = append(segs, seg)
				return nil
			}
			if e, ok := experiments.WorkExperimentByName(name); ok {
				seg, err := jobs.WorkSegment(e, shard, shards, *workers, *timeout)
				if err != nil {
					return err
				}
				segs = append(segs, seg)
				return nil
			}
			return fmt.Errorf("no experiment %q (grids: T1..T5, T8, A1, A2; work pipelines: T6, T7, T9, A3, M1)", name)
		}
		if *expList == "all" {
			for _, e := range experiments.GridExperiments() {
				if err := add(e.Name); err != nil {
					return err
				}
			}
			for _, e := range experiments.WorkExperiments() {
				if err := add(e.Name); err != nil {
					return err
				}
			}
		} else {
			for _, name := range strings.Split(*expList, ",") {
				if err := add(strings.TrimSpace(name)); err != nil {
					return err
				}
			}
		}
	}

	// Resolve the run report's destination: explicit -report wins, 'none'
	// disables, and a -o run reports next to its shard file by default.
	reportPath := *repPath
	if reportPath == "" && *output != "" {
		reportPath = *output + ".report.json"
	}
	if reportPath == "none" {
		reportPath = ""
	}
	// Telemetry stays compiled-out (nil metric sets) unless something reads
	// it: the progress line, the run report, or the HTTP endpoint. Enabling
	// it never changes the record stream — the counters are observers.
	wantProgress := *progress && !*quiet
	if wantProgress || reportPath != "" || *telAddr != "" {
		telemetry.Enable()
	}
	if *telAddr != "" {
		srv, err := telemetry.Serve(*telAddr)
		if err != nil {
			return err
		}
		defer srv.Close()
		if !*quiet {
			fmt.Fprintf(os.Stderr, "telemetry: /metrics and /debug/pprof/ on http://%s\n", srv.Addr())
		}
	}
	info := out
	if *quiet {
		info = io.Discard
	}

	// The journal brackets a standalone run as job 0: BeginJob before the
	// salvage path so resume events (salvage, torn_tail) land inside the job
	// span, EndJob with the run's status after the stream finishes. The
	// blocking export makes <out>.events.jsonl lossless.
	var jal *events.Journal
	var jspan uint64
	var exp *events.Export
	if *eventsOn {
		jal = events.New(events.Options{})
		events.Activate(jal)
		defer events.Activate(nil)
		if *output != "" {
			exp, err = events.StartExport(jal, *output+".events.jsonl", 0)
			if err != nil {
				return withExit(exitSink, err)
			}
			defer exp.Close()
		}
		jspan = jal.BeginJob(0)
	}

	w := out
	skips := make([]int, len(segs))
	if *output != "" {
		var f *os.File
		if *resume {
			f, err = jobs.Salvage(*output, segs, skips, info)
		} else {
			f, err = os.Create(*output)
			err = withExit(exitSink, err)
		}
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	total, salvaged := 0, 0
	for i, s := range segs {
		total += s.Length
		salvaged += skips[i]
	}
	track := newProgressTracker(total, salvaged)
	var prog *telemetry.Progress
	if wantProgress {
		if len(segs) > 0 {
			track.enter(segs[0].Name) // the immediate first render names it
		}
		prog = &telemetry.Progress{Out: os.Stderr, Snapshot: track.snapshot}
		prog.Start()
		defer prog.Stop()
	}

	// Per-trial errors (quarantined panics, deadline overruns) do not stop
	// the run: later segments still execute and the first error is reported
	// at the end with exit code 2. Everything else — sink failures,
	// interrupts — aborts, leaving the flushed valid prefix on disk. Either
	// way the run report records what actually happened.
	start := time.Now()
	oc := jobs.Stream(ctx, segs, skips, w, track.enter)
	if prog != nil {
		prog.Stop()
	}
	if reportPath != "" {
		rep := jobs.BuildReport("sweeprun run", jobs.StatusOf(oc.AbortErr, oc.TrialErr),
			time.Since(start), oc.Segments, oc.Causes)
		if werr := rep.WriteFile(reportPath); werr != nil {
			if oc.Err() == nil {
				return withExit(exitSink, fmt.Errorf("run report %s: %w", reportPath, werr))
			}
			fmt.Fprintf(info, "run report %s not written: %v\n", reportPath, werr)
		} else {
			fmt.Fprintf(info, "report: %s\n", reportPath)
		}
	}
	if jal != nil {
		jal.EndJob(jspan, jobs.StatusOf(oc.AbortErr, oc.TrialErr))
		if cerr := exp.Close(); cerr != nil && oc.Err() == nil {
			return withExit(exitSink, fmt.Errorf("event journal %s.events.jsonl: %w", *output, cerr))
		}
	}
	if oc.AbortErr != nil {
		if isInterrupt(oc.AbortErr) && *output != "" {
			fmt.Fprintf(out, "interrupted: %s holds a valid prefix — resume with: sweeprun run %s\n",
				*output, resumeCommand(args, *resume))
		}
		return oc.AbortErr
	}
	return oc.TrialErr
}

// progressTracker feeds the live progress line from the sink counters plus
// the resume accounting: durable = salvaged + records written since the run
// began. It only reads telemetry — the renderer cannot perturb the stream.
type progressTracker struct {
	total    int
	salvaged int
	recBase  uint64
	quarBase uint64

	mu          sync.Mutex
	segment     string
	segQuarBase uint64
}

func newProgressTracker(total, salvaged int) *progressTracker {
	sm := telemetry.SinkIO()
	return &progressTracker{
		total:    total,
		salvaged: salvaged,
		recBase:  sm.Records.Load(),
		quarBase: sm.Quarantined.Load(),
	}
}

// enter marks the segment now executing, re-basing its quarantine count.
func (t *progressTracker) enter(name string) {
	q := telemetry.SinkIO().Quarantined.Load() - t.quarBase
	t.mu.Lock()
	t.segment, t.segQuarBase = name, q
	t.mu.Unlock()
}

func (t *progressTracker) snapshot() telemetry.ProgressSnapshot {
	sm := telemetry.SinkIO()
	rec := sm.Records.Load() - t.recBase
	quar := sm.Quarantined.Load() - t.quarBase
	t.mu.Lock()
	seg, segBase := t.segment, t.segQuarBase
	t.mu.Unlock()
	return telemetry.ProgressSnapshot{
		Segment:            seg,
		SegmentQuarantined: int(quar - segBase),
		Done:               t.salvaged + int(rec),
		Total:              t.total,
		Quarantined:        int(quar),
	}
}

// resumeCommand renders the argument list that resumes this invocation.
func resumeCommand(args []string, alreadyResume bool) string {
	if alreadyResume {
		return strings.Join(args, " ")
	}
	return "-resume " + strings.Join(args, " ")
}

// shardFile is one input file's read outcome, kept for per-shard verdicts.
type shardFile struct {
	path string
	recs []sink.Record
	err  error
}

// readShardFiles reads every input file, continuing past failures so a bad
// shard set produces one verdict per file instead of stopping at the first.
func readShardFiles(paths []string) (files []shardFile, all []sink.Record, failed int) {
	for _, path := range paths {
		sf := shardFile{path: path}
		f, err := os.Open(path)
		if err != nil {
			sf.err = err
		} else {
			sf.recs, sf.err = sink.ReadRecords(f)
			f.Close()
		}
		if sf.err != nil {
			failed++
		} else {
			all = append(all, sf.recs...)
		}
		files = append(files, sf)
	}
	return files, all, failed
}

// printShardVerdicts writes one line per input file: OK with its record
// count, or the rejection reason. A non-empty exp restricts the count to
// the experiment group being diagnosed, so a multi-experiment shard file
// does not overstate what it contributes to the rejected group.
func printShardVerdicts(out io.Writer, files []shardFile, exp string, verdict func(sf shardFile) error) {
	for _, sf := range files {
		err := sf.err
		if err == nil && verdict != nil {
			err = verdict(sf)
		}
		if err != nil {
			fmt.Fprintf(out, "  shard %s: REJECTED: %v\n", sf.path, err)
			continue
		}
		n := len(sf.recs)
		if exp != "" {
			n = 0
			for _, rec := range sf.recs {
				if rec.Exp == exp {
					n++
				}
			}
		}
		fmt.Fprintf(out, "  shard %s: ok (%d records)\n", sf.path, n)
	}
}

// experimentShardVerdict checks one file's records for one experiment
// against this build's derivation — a partial-cover version of the merge
// guards, used to point at the offending shard when the merged set is
// rejected.
func experimentShardVerdict(name string, sf shardFile) error {
	var recs []sink.Record
	for _, rec := range sf.recs {
		if rec.Exp == name {
			recs = append(recs, rec)
		}
	}
	if len(recs) == 0 {
		return nil // carries nothing for this experiment
	}
	seen := make(map[int]bool, len(recs))
	for _, rec := range recs {
		if seen[rec.Index] {
			return fmt.Errorf("duplicate record for trial %d", rec.Index)
		}
		seen[rec.Index] = true
	}
	if e, ok := experiments.GridExperimentByName(name); ok {
		scenarios, _, err := e.Build()
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(scenarios) {
				return fmt.Errorf("trial %d outside this build's %d-trial grid", rec.Index, len(scenarios))
			}
			if fp := sink.ParamsOf(scenarios[rec.Index]).Fingerprint(); rec.Fingerprint != fp {
				return fmt.Errorf("trial %d fingerprint %s does not match this build's grid (%s)", rec.Index, rec.Fingerprint, fp)
			}
			if rec.Seed != scenarios[rec.Index].Seed {
				return fmt.Errorf("trial %d seed %d does not match this build's grid (%d)", rec.Index, rec.Seed, scenarios[rec.Index].Seed)
			}
		}
		return nil
	}
	if e, ok := experiments.WorkExperimentByName(name); ok {
		items, _, _, err := e.Build()
		if err != nil {
			return err
		}
		for _, rec := range recs {
			if rec.Index < 0 || rec.Index >= len(items) {
				return fmt.Errorf("item %d outside this build's %d-item pipeline", rec.Index, len(items))
			}
			item := items[rec.Index]
			if rec.Item != item.Kind || rec.ItemParams != item.Params || rec.Fingerprint != item.Fingerprint() || rec.Seed != item.Seed {
				return fmt.Errorf("item %d does not match this build's pipeline (recorded %s(%s) fp=%s seed=%d)",
					rec.Index, rec.Item, rec.ItemParams, rec.Fingerprint, rec.Seed)
			}
		}
		return nil
	}
	return fmt.Errorf("no experiment %q in this build", name)
}

// trialsShardVerdict builds a per-file verdict for a rejected "trials"
// group. A configuration sweep has no build-side derivation to check
// against (the producing Config is not in the shard files), so the verdict
// is relative: every file must be internally consistent and carry the
// majority fingerprint across the whole set — which names the foreign
// shard(s) when configurations were mixed.
func trialsShardVerdict(files []shardFile) func(sf shardFile) error {
	counts := make(map[string]int)
	for _, sf := range files {
		seen := make(map[string]bool)
		for _, rec := range sf.recs {
			if rec.Exp == "trials" && !seen[rec.Fingerprint] {
				seen[rec.Fingerprint] = true
				counts[rec.Fingerprint]++
			}
		}
	}
	majority := ""
	for fp, n := range counts {
		if n > counts[majority] || (n == counts[majority] && fp > majority) {
			majority = fp
		}
	}
	return func(sf shardFile) error {
		var fp string
		for _, rec := range sf.recs {
			if rec.Exp != "trials" {
				continue
			}
			switch {
			case fp == "":
				fp = rec.Fingerprint
			case rec.Fingerprint != fp:
				return fmt.Errorf("mixes configurations (fingerprints %s and %s)", fp, rec.Fingerprint)
			}
		}
		if fp != "" && fp != majority {
			return fmt.Errorf("fingerprint %s differs from the set's majority %s — different configuration or base seed", fp, majority)
		}
		return nil
	}
}

// merge is the "merge" subcommand: fold shard files into tables and stats.
// A rejected shard set prints per-shard verdicts and exits non-zero.
func merge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun merge", flag.ContinueOnError)
	quiet := fs.Bool("quiet", false, "per-experiment PASS/FAIL lines instead of full tables (CI use)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return mergeRender(fs.Args(), out, *quiet)
}

// replayCmd is the "replay" subcommand: render-without-rerun. It folds
// recorded results through the same verified path as merge — byte-identical
// tables, no simulation (the engine is never invoked on this path).
func replayCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun replay", flag.ContinueOnError)
	quiet := fs.Bool("quiet", false, "per-experiment PASS/FAIL lines instead of full tables (CI use)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	return mergeRender(fs.Args(), out, *quiet)
}

// mergeRender is the shared body of merge and replay. Unreadable inputs
// exit 3; a rejected or failing shard set exits 4.
func mergeRender(paths []string, out io.Writer, quiet bool) error {
	if len(paths) == 0 {
		return fmt.Errorf("need at least one shard file")
	}
	files, all, failedReads := readShardFiles(paths)
	if failedReads > 0 {
		printShardVerdicts(out, files, "", nil)
		return withExit(exitSink, fmt.Errorf("%d of %d shard file(s) unreadable", failedReads, len(files)))
	}
	run := replay.Group(all)
	if len(run.Order) == 0 {
		return withExit(exitReject, fmt.Errorf("no records in %d file(s)", len(files)))
	}
	failed := 0
	for _, name := range run.Order {
		group := run.Groups[name]
		if name == "trials" {
			if err := mergeTrials(group, out, quiet); err != nil {
				fmt.Fprintln(out, "trials: shard set rejected")
				printShardVerdicts(out, files, "trials", trialsShardVerdict(files))
				return withExit(exitReject, fmt.Errorf("trials: %w", err))
			}
			continue
		}
		table, err := replay.RenderExperiment(name, group)
		if err != nil {
			fmt.Fprintf(out, "%s: shard set rejected\n", name)
			printShardVerdicts(out, files, name, func(sf shardFile) error {
				return experimentShardVerdict(name, sf)
			})
			return withExit(exitReject, fmt.Errorf("%s: %w", name, err))
		}
		if quiet {
			verdict := "PASS"
			if !table.Pass {
				verdict = "FAIL"
			}
			fmt.Fprintf(out, "%s: %s\n", name, verdict)
		} else {
			fmt.Fprintln(out, table)
		}
		if !table.Pass {
			failed++
		}
	}
	if failed > 0 {
		return withExit(exitReject, fmt.Errorf("%d experiment(s) failed their internal checks", failed))
	}
	return nil
}

// trialResultsOf reconstructs the public TrialResults of a merged
// configuration-sweep group, verifying the single-fingerprint invariant.
func trialResultsOf(recs []sink.Record) ([]adhocconsensus.TrialResult, error) {
	results, err := sink.Merge(recs)
	if err != nil {
		return nil, err
	}
	// One sweep runs under one seed schedule; shards recorded under v1 and
	// v2 are different experiments and must not fold together.
	if _, err := sink.UniformSeedSchedule(recs); err != nil {
		return nil, err
	}
	// All trials of one configuration share its fingerprint; reject mixed
	// files.
	fp := recs[0].Fingerprint
	for _, rec := range recs {
		if rec.Fingerprint != fp {
			return nil, fmt.Errorf("trial %d fingerprint %s differs from %s — shards from different configurations",
				rec.Index, rec.Fingerprint, fp)
		}
	}
	trs := make([]adhocconsensus.TrialResult, len(results))
	for i, r := range results {
		trs[i] = adhocconsensus.TrialResult{
			Trial:             r.Index,
			Seed:              r.Seed,
			Fingerprint:       fp,
			Rounds:            r.Rounds,
			Decided:           r.AllDecided,
			Decisions:         r.Decisions,
			DecidedValues:     r.DecidedValues,
			LastDecisionRound: r.LastDecisionRound,
			AgreementOK:       r.AgreementOK,
			ValidityOK:        r.ValidityOK,
			TerminationOK:     r.TerminationOK,
		}
	}
	return trs, nil
}

// mergeTrials folds configuration-sweep records into the statistics and
// seed-provenance report consensus-sim -trials prints.
func mergeTrials(recs []sink.Record, out io.Writer, quiet bool) error {
	trs, err := trialResultsOf(recs)
	if err != nil {
		return err
	}
	st := adhocconsensus.TrialStatsOf(trs)
	if quiet {
		fmt.Fprintf(out, "trials: %d merged, %d decided, %d violation(s)\n",
			st.Trials, st.Decided, st.AgreementViolations)
		return nil
	}
	alg, err := cli.ParseAlgorithm(recs[0].Params.Algorithm)
	if err != nil {
		return fmt.Errorf("records carry no usable algorithm param: %w", err)
	}
	cli.PrintTrialStats(out, alg, recs[0].Params.N, st)
	cli.PrintSeedProvenance(out, trs)
	return nil
}

// parseSelector decodes the -flag spec through the shared replay syntax,
// rejecting the one selector verify cannot honor: quarantined records
// carry no digest to re-execute (sweepd's flagged endpoint serves them).
func parseSelector(spec string) (replay.Selector, error) {
	sel, err := replay.ParseSelector(spec)
	if err != nil {
		return sel, err
	}
	if sel.Quarantined {
		return sel, fmt.Errorf("selector \"quarantined\" picks records without digests — nothing to verify; inspect them via sweepd's /jobs/{id}/flagged or 'sweeprun replay'")
	}
	return sel, nil
}

// verifyCmd is the "verify" subcommand: forensic re-execution of flagged
// recorded trials at full trace fidelity. Failed audits exit 4; unreadable
// inputs exit 3.
func verifyCmd(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun verify", flag.ContinueOnError)
	cf := cli.RegisterConfig(fs)
	var (
		flagSpec  = fs.String("flag", "undecided,violations,slowest=1", "trial selectors: undecided, violations, slowest[=K], recheck")
		bundleDir = fs.String("bundle", "", "write per-trial trace bundles into this directory")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("verify needs at least one shard file")
	}
	sel, err := parseSelector(*flagSpec)
	if err != nil {
		return err
	}
	if *bundleDir != "" {
		if err := os.MkdirAll(*bundleDir, 0o755); err != nil {
			return withExit(exitSink, err)
		}
	}
	run, err := replay.LoadFiles(fs.Args()...)
	if err != nil {
		return withExit(exitSink, err)
	}
	failedAudits := 0
	for _, name := range run.Order {
		group := run.Groups[name]
		switch {
		case name == "trials":
			n, err := verifyTrials(cf, group, sel, *bundleDir, out)
			if err != nil {
				return withExit(exitReject, fmt.Errorf("trials: %w", err))
			}
			failedAudits += n
		default:
			if _, isWork := experiments.WorkExperimentByName(name); isWork {
				// Work-item outcomes are not engine digests; their audit is
				// the render-side item verification (sweeprun replay).
				fmt.Fprintf(out, "%s: work-item pipeline, per-seed re-execution not applicable (render-verify via 'sweeprun replay')\n", name)
				continue
			}
			vs, err := replay.VerifyExperiment(name, group, sel, *bundleDir != "")
			if err != nil {
				return withExit(exitReject, fmt.Errorf("%s: %w", name, err))
			}
			failedAudits += reportVerifications(out, name, vs, *bundleDir)
		}
	}
	if failedAudits > 0 {
		return withExit(exitReject, fmt.Errorf("%d audit(s) failed", failedAudits))
	}
	return nil
}

// verifyTrials audits a configuration-sweep group through the public
// Config.ReplayFlagged API; the configuration flags must match the recorded
// run (fingerprint-checked).
func verifyTrials(cf *cli.ConfigFlags, recs []sink.Record, sel replay.Selector, bundleDir string, out io.Writer) (failed int, err error) {
	if sel.Recheck {
		return 0, fmt.Errorf("recheck is not supported for configuration sweeps; select trials with undecided/violations/slowest instead")
	}
	cfg, err := cf.Config()
	if err != nil {
		return 0, err
	}
	trs, err := trialResultsOf(recs)
	if err != nil {
		return 0, err
	}
	reports, err := cfg.ReplayFlagged(trs, adhocconsensus.ReplaySelector{
		Undecided:  sel.Undecided,
		Violations: sel.Violations,
		TopSlowest: sel.TopSlowest,
	})
	if err != nil {
		return 0, fmt.Errorf("%w (pass the run's configuration flags to verify a -trials sweep)", err)
	}
	fmt.Fprintf(out, "trials: %d trial(s) flagged of %d\n", len(reports), len(trs))
	for _, rep := range reports {
		status, ok := auditStatus(rep.OK(), rep.Mismatch, rep.TraceError)
		if !ok {
			failed++
		}
		fmt.Fprintf(out, "  trial %d seed %d [%s]: %s\n", rep.Trial, rep.Seed, strings.Join(rep.Reasons, ","), status)
		if bundleDir != "" {
			if bundle := rep.BundleText(); bundle != "" {
				path := filepath.Join(bundleDir, fmt.Sprintf("trials-%d.txt", rep.Trial))
				if err := os.WriteFile(path, []byte(bundle), 0o644); err != nil {
					return failed, err
				}
			}
		}
		if rep.Report != nil {
			rep.Report.Execution.Release()
		}
	}
	return failed, nil
}

// auditStatus renders one audit verdict line fragment — shared by the
// experiment and trials verify reports so the two outputs cannot drift.
func auditStatus(ok bool, mismatch, traceErr string) (status string, clean bool) {
	if ok {
		return "digest ok, trace legal", true
	}
	status = "AUDIT FAILED"
	if mismatch != "" {
		status += ": " + mismatch
	}
	if traceErr != "" {
		status += ": " + traceErr
	}
	return status, false
}

// reportVerifications prints one audit line per verification and writes
// bundles; it returns how many audits failed.
func reportVerifications(out io.Writer, name string, vs []*replay.Verification, bundleDir string) (failed int) {
	fmt.Fprintf(out, "%s: %d trial(s) flagged\n", name, len(vs))
	for _, v := range vs {
		status, ok := auditStatus(v.OK(), v.Mismatch, v.TraceError)
		if !ok {
			failed++
		}
		fmt.Fprintf(out, "  trial %d (%s) seed %d [%s]: %s\n", v.Index, v.Name, v.Seed, strings.Join(v.Reasons, ","), status)
		if bundleDir != "" && v.Bundle != "" {
			path := filepath.Join(bundleDir, fmt.Sprintf("%s-%d.txt", name, v.Index))
			if err := os.WriteFile(path, []byte(v.Bundle), 0o644); err != nil {
				fmt.Fprintf(out, "  bundle %s: %v\n", path, err)
				failed++
			}
		}
	}
	return failed
}
