// Command sweeprun executes experiment sweeps shard-by-shard and folds the
// shard files back together — the multi-machine face of the streaming
// result-sink subsystem (internal/sink).
//
// "sweeprun run" executes the i-of-k shard of a sweep and streams one JSONL
// record per trial: either the scenario grids of the paper's experiment
// tables (-exp), or an N-trial sweep of one configuration (-trials, with
// the same configuration flags as consensus-sim). Trial seeds depend only
// on the sweep seed and the GLOBAL trial index, never on the shard layout,
// so k workers running "run -shard 0/k .. (k-1)/k" produce files whose
// union is byte-identical to a single machine's run.
//
// "sweeprun merge" reads any set of shard files, verifies they form a
// complete, non-overlapping, fingerprint-consistent cover, and renders
// exactly what the in-process single-machine path produces: the experiment
// tables of cmd/benchtab, or the trial statistics of consensus-sim -trials
// (golden-tested byte-identical, including the seed-provenance report).
//
// Examples:
//
//	sweeprun run -exp T3 -shard 0/2 -o shard0.jsonl
//	sweeprun run -exp T3 -shard 1/2 -o shard1.jsonl
//	sweeprun merge shard0.jsonl shard1.jsonl
//
//	sweeprun run -trials 10000 -shard 0/4 -alg bitbybit -values 3,7,7,1 \
//	    -loss prob -p 0.4 -seed 7 -o t0.jsonl   # ... one worker per shard
//	sweeprun merge t0.jsonl t1.jsonl t2.jsonl t3.jsonl
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"adhocconsensus"
	"adhocconsensus/internal/cli"
	"adhocconsensus/internal/experiments"
	"adhocconsensus/internal/sim"
	"adhocconsensus/internal/sink"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sweeprun:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: sweeprun run|merge [flags]")
	}
	switch args[0] {
	case "run":
		return runShard(args[1:], out)
	case "merge":
		return merge(args[1:], out)
	default:
		return fmt.Errorf("unknown subcommand %q (want run or merge)", args[0])
	}
}

// parseShard decodes "-shard i/k", strictly: trailing garbage (a typo like
// "1/2/3") must error rather than silently run the wrong partition.
func parseShard(s string) (shard, shards int, err error) {
	i, k, ok := strings.Cut(s, "/")
	if !ok {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", s)
	}
	if shard, err = strconv.Atoi(i); err == nil {
		shards, err = strconv.Atoi(k)
	}
	if err != nil {
		return 0, 0, fmt.Errorf("bad -shard %q (want i/k, e.g. 0/2)", s)
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return 0, 0, fmt.Errorf("bad -shard %q: shard must be in [0,%d)", s, shards)
	}
	return shard, shards, nil
}

// runShard is the "run" subcommand: execute one shard, stream JSONL.
func runShard(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun run", flag.ContinueOnError)
	cf := cli.RegisterConfig(fs)
	var (
		expList  = fs.String("exp", "", "comma-separated grid experiments (T1..T5, T8, A1, A2) or 'all'")
		trials   = fs.Int("trials", 0, "instead of -exp: sweep this many trials of the flagged configuration")
		shardStr = fs.String("shard", "0/1", "shard to execute, as i/k")
		workers  = fs.Int("workers", 0, "worker-pool size (0 = GOMAXPROCS)")
		output   = fs.String("o", "", "output JSONL file (default stdout)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	shard, shards, err := parseShard(*shardStr)
	if err != nil {
		return err
	}
	if *trials < 0 {
		return fmt.Errorf("-trials %d must be positive", *trials)
	}
	if (*expList == "") == (*trials == 0) {
		return fmt.Errorf("pick exactly one of -exp or -trials")
	}

	w := out
	if *output != "" {
		f, err := os.Create(*output)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}

	if *trials > 0 {
		cfg, err := cf.Config()
		if err != nil {
			return err
		}
		return streamTrialsShard(cfg, *trials, *workers, shard, shards, w)
	}

	var exps []experiments.GridExperiment
	if *expList == "all" {
		exps = experiments.GridExperiments()
	} else {
		for _, name := range strings.Split(*expList, ",") {
			e, ok := experiments.GridExperimentByName(strings.TrimSpace(name))
			if !ok {
				return fmt.Errorf("no grid experiment %q (grid experiments: T1..T5, T8, A1, A2; the bespoke pipelines T6/T7/T9, A3, M1 run in-process only, via benchtab)", name)
			}
			exps = append(exps, e)
		}
	}
	for _, e := range exps {
		if err := streamExperimentShard(e, shard, shards, *workers, w); err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
	}
	return nil
}

// streamExperimentShard runs one experiment grid's shard into a JSONL
// stream.
func streamExperimentShard(e experiments.GridExperiment, shard, shards, workers int, w io.Writer) error {
	scenarios, _, err := e.Build()
	if err != nil {
		return err
	}
	shardTrials, err := sim.ShardScenarios(scenarios, shard, shards)
	if err != nil {
		return err
	}
	// Precompute params once per grid point: the sink's lookup runs per
	// trial on the streaming path.
	params := make([]sink.Params, len(scenarios))
	for i, s := range scenarios {
		params[i] = sink.ParamsOf(s)
	}
	j := sink.NewJSONL(w)
	j.Exp = e.Name
	j.Params = func(i int) sink.Params { return params[i] }
	if err := (sim.Runner{Workers: workers}).SweepTrialsTo(shardTrials, j); err != nil {
		return err
	}
	return j.Flush()
}

// jsonlTrials adapts the public per-trial stream to JSONL records, reusing
// a values scratch so million-trial shards stay allocation-free per record
// like the sim-sweep path.
type jsonlTrials struct {
	j      *sink.JSONL
	params sink.Params
	vals   []uint64
}

func (s *jsonlTrials) Consume(r adhocconsensus.TrialResult) error {
	rec := sink.Record{
		Fingerprint:       r.Fingerprint,
		Index:             r.Trial,
		Seed:              r.Seed,
		Rounds:            r.Rounds,
		AllDecided:        r.Decided,
		Decisions:         r.Decisions,
		LastDecisionRound: r.LastDecisionRound,
		AgreementOK:       r.AgreementOK,
		ValidityOK:        r.ValidityOK,
		TerminationOK:     r.TerminationOK,
		Params:            s.params,
	}
	s.vals = s.vals[:0]
	for _, v := range r.DecidedValues {
		s.vals = append(s.vals, uint64(v))
	}
	rec.DecidedValues = s.vals
	return s.j.WriteRecord(rec)
}

// streamTrialsShard runs one configuration-sweep shard into JSONL via the
// public streaming API.
func streamTrialsShard(cfg adhocconsensus.Config, trials, workers, shard, shards int, w io.Writer) error {
	j := sink.NewJSONL(w)
	j.Exp = "trials"
	if err := cfg.StreamTrials(trials, workers, shard, shards,
		&jsonlTrials{j: j, params: cli.RecordParams(cfg)}); err != nil {
		return err
	}
	return j.Flush()
}

// merge is the "merge" subcommand: fold shard files into tables and stats.
func merge(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("sweeprun merge", flag.ContinueOnError)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() == 0 {
		return fmt.Errorf("merge needs at least one shard file")
	}
	var recs []sink.Record
	for _, path := range fs.Args() {
		f, err := os.Open(path)
		if err != nil {
			return err
		}
		fileRecs, err := sink.ReadRecords(f)
		f.Close()
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		recs = append(recs, fileRecs...)
	}
	groups, order := sink.GroupByExp(recs)
	failed := 0
	for _, name := range order {
		group := groups[name]
		if name == "trials" {
			if err := mergeTrials(group, out); err != nil {
				return fmt.Errorf("trials: %w", err)
			}
			continue
		}
		pass, err := mergeExperiment(name, group, out)
		if err != nil {
			return fmt.Errorf("%s: %w", name, err)
		}
		if !pass {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed their internal checks", failed)
	}
	return nil
}

// mergeExperiment folds one experiment's shard records and renders its
// table exactly as the in-process path does.
func mergeExperiment(name string, recs []sink.Record, out io.Writer) (pass bool, err error) {
	e, ok := experiments.GridExperimentByName(name)
	if !ok {
		return false, fmt.Errorf("no grid experiment %q in this build", name)
	}
	scenarios, render, err := e.Build()
	if err != nil {
		return false, err
	}
	results, err := sink.Merge(recs)
	if err != nil {
		return false, err
	}
	if len(results) != len(scenarios) {
		return false, fmt.Errorf("%d trials merged, this build's grid has %d — incomplete shard set or version skew",
			len(results), len(scenarios))
	}
	params := make([]sink.Params, len(scenarios))
	for i, s := range scenarios {
		params[i] = sink.ParamsOf(s)
	}
	if err := sink.VerifyFingerprints(recs, func(i int) sink.Params { return params[i] }); err != nil {
		return false, err
	}
	// Fingerprints exclude per-trial seeds; check those against the grid
	// directly, so shards from a build with different seed derivation (or a
	// reseeded grid) cannot fold into a chimera table.
	for i, res := range results {
		if res.Seed != scenarios[i].Seed {
			return false, fmt.Errorf("trial %d ran with seed %d, this build's grid derives %d — shard produced by a different grid or version",
				i, res.Seed, scenarios[i].Seed)
		}
	}
	table, err := render(results)
	if err != nil {
		return false, err
	}
	fmt.Fprintln(out, table)
	return table.Pass, nil
}

// mergeTrials folds configuration-sweep records into the statistics and
// seed-provenance report consensus-sim -trials prints.
func mergeTrials(recs []sink.Record, out io.Writer) error {
	results, err := sink.Merge(recs)
	if err != nil {
		return err
	}
	// All trials of one configuration share its fingerprint; reject mixed
	// files.
	fp := recs[0].Fingerprint
	for _, rec := range recs {
		if rec.Fingerprint != fp {
			return fmt.Errorf("trial %d fingerprint %s differs from %s — shards from different configurations",
				rec.Index, rec.Fingerprint, fp)
		}
	}
	trs := make([]adhocconsensus.TrialResult, len(results))
	for i, r := range results {
		trs[i] = adhocconsensus.TrialResult{
			Trial:             r.Index,
			Seed:              r.Seed,
			Fingerprint:       fp,
			Rounds:            r.Rounds,
			Decided:           r.AllDecided,
			Decisions:         r.Decisions,
			DecidedValues:     r.DecidedValues,
			LastDecisionRound: r.LastDecisionRound,
			AgreementOK:       r.AgreementOK,
			ValidityOK:        r.ValidityOK,
			TerminationOK:     r.TerminationOK,
		}
	}
	alg, err := cli.ParseAlgorithm(recs[0].Params.Algorithm)
	if err != nil {
		return fmt.Errorf("records carry no usable algorithm param: %w", err)
	}
	cli.PrintTrialStats(out, alg, recs[0].Params.N, adhocconsensus.TrialStatsOf(trs))
	cli.PrintSeedProvenance(out, trs)
	return nil
}
