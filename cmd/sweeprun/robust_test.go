package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"adhocconsensus/internal/sink"
)

// goldenRun executes a fresh (non-resume) run into path and returns the
// file's bytes: the uninterrupted reference every resume test compares
// against.
func goldenRun(t *testing.T, args []string, path string) []byte {
	t.Helper()
	if err := runCLI(append(args, "-o", path), os.Stdout); err != nil {
		t.Fatalf("golden run: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// writePartial simulates a crash-truncated shard file: the first keepLines
// complete records of golden, plus extraBytes of the next line (a torn tail
// a SIGKILL mid-write leaves behind).
func writePartial(t *testing.T, golden []byte, path string, keepLines, extraBytes int) {
	t.Helper()
	lines := bytes.SplitAfter(golden, []byte("\n"))
	var b []byte
	for i := 0; i < keepLines; i++ {
		b = append(b, lines[i]...)
	}
	if extraBytes > 0 {
		next := lines[keepLines]
		if extraBytes >= len(next) {
			extraBytes = len(next) - 1 // must stay a torn, incomplete line
		}
		b = append(b, next[:extraBytes]...)
	}
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}
}

var trialsFlags = []string{"-trials", "40", "-shard", "1/3",
	"-alg", "bitbybit", "-values", "3,7,7,1", "-domain", "16",
	"-loss", "prob", "-p", "0.4", "-cst", "9", "-seed", "11"}

// TestResumeTrialsByteIdentical: a configuration-sweep shard file cut off
// mid-record (torn tail) resumes to bytes identical to the uninterrupted
// run's.
func TestResumeTrialsByteIdentical(t *testing.T) {
	dir := t.TempDir()
	golden := goldenRun(t, append([]string{"run"}, trialsFlags...), filepath.Join(dir, "golden.jsonl"))

	partial := filepath.Join(dir, "partial.jsonl")
	writePartial(t, golden, partial, 5, 30)
	var out strings.Builder
	if err := runCLI(append(append([]string{"run", "-resume"}, trialsFlags...), "-o", partial), &out); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !strings.Contains(out.String(), "discarding torn tail") {
		t.Fatalf("resume did not report the torn tail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "5 of 13 trial(s) durable, 8 to run") {
		t.Fatalf("resume accounting wrong:\n%s", out.String())
	}
	resumed, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatal("resumed shard differs from the uninterrupted run")
	}
}

// TestResumeGridByteIdentical: a grid-experiment shard cut at a clean record
// boundary resumes byte-identically, and resuming a file that never existed
// is just a fresh run.
func TestResumeGridByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"run", "-exp", "T3", "-shard", "0/2"}
	golden := goldenRun(t, args, filepath.Join(dir, "golden.jsonl"))

	partial := filepath.Join(dir, "partial.jsonl")
	writePartial(t, golden, partial, 3, 0)
	if err := runCLI(append(append([]string{"run", "-resume"}, args[1:]...), "-o", partial), os.Stdout); err != nil {
		t.Fatalf("resume: %v", err)
	}
	resumed, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatal("resumed shard differs from the uninterrupted run")
	}

	fresh := filepath.Join(dir, "fresh.jsonl")
	var out strings.Builder
	if err := runCLI(append(append([]string{"run", "-resume"}, args[1:]...), "-o", fresh), &out); err != nil {
		t.Fatalf("resume of missing file: %v", err)
	}
	if !strings.Contains(out.String(), "0 of ") {
		t.Fatalf("missing file should resume as an empty prefix:\n%s", out.String())
	}
	if data, _ := os.ReadFile(fresh); !bytes.Equal(data, golden) {
		t.Fatal("resume of a missing file differs from a fresh run")
	}
}

// TestResumeMultiSegmentByteIdentical: a shard carrying a grid experiment
// followed by a work-item pipeline, torn inside the second segment, resumes
// byte-identically — the salvage prefix spans a completed segment plus part
// of the next.
func TestResumeMultiSegmentByteIdentical(t *testing.T) {
	dir := t.TempDir()
	args := []string{"run", "-exp", "T8,T9", "-shard", "0/2"}
	golden := goldenRun(t, args, filepath.Join(dir, "golden.jsonl"))
	total := bytes.Count(golden, []byte("\n"))
	if total < 4 {
		t.Fatalf("need at least 4 records to tear the tail, have %d", total)
	}

	partial := filepath.Join(dir, "partial.jsonl")
	writePartial(t, golden, partial, total-2, 25)
	if err := runCLI(append(append([]string{"run", "-resume"}, args[1:]...), "-o", partial), os.Stdout); err != nil {
		t.Fatalf("resume: %v", err)
	}
	resumed, err := os.ReadFile(partial)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatal("resumed multi-segment shard differs from the uninterrupted run")
	}
}

// TestResumeRejectsMismatches: a resume whose invocation does not derive the
// salvaged prefix — different seed, configuration, experiment set, or a file
// with surplus records — is rejected with exit code 4 and leaves the file
// untouched.
func TestResumeRejectsMismatches(t *testing.T) {
	dir := t.TempDir()
	trialsFile := filepath.Join(dir, "trials.jsonl")
	trialsGolden := goldenRun(t, append([]string{"run"}, trialsFlags...), trialsFile)
	expFile := filepath.Join(dir, "t8.jsonl")
	goldenRun(t, []string{"run", "-exp", "T8", "-shard", "0/1"}, expFile)

	replace := func(flags []string, k, v string) []string {
		out := append([]string(nil), flags...)
		for i := range out {
			if out[i] == k {
				out[i+1] = v
			}
		}
		return out
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"seed", replace(trialsFlags, "-seed", "12"), "seed schedule"},
		{"schedule", append(append([]string(nil), trialsFlags...), "-schedule", "2"),
			"recorded under seed schedule v1, expected v2"},
		{"config", replace(trialsFlags, "-p", "0.5"), "different configuration parameters"},
		{"surplus", replace(trialsFlags, "-trials", "20"), "beyond what this invocation produces"},
		{"experiment", []string{"-exp", "T9", "-shard", "0/1"}, "record belongs to"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			path := trialsFile
			if tc.name == "experiment" {
				path = expFile
			}
			err := runCLI(append(append([]string{"run", "-resume"}, tc.args...), "-o", path), os.Stdout)
			if err == nil {
				t.Fatal("mismatched resume accepted")
			}
			if code := exitCodeOf(err); code != exitReject {
				t.Fatalf("exit code %d, want %d (reject): %v", code, exitReject, err)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("rejection %v does not name the mismatch (%q)", err, tc.want)
			}
			if tc.name == "schedule" {
				// Schedule skew surfaces as the typed, positioned error so
				// tooling can classify it without string matching.
				var mismatch *sink.ScheduleMismatchError
				if !errors.As(err, &mismatch) {
					t.Fatalf("schedule rejection %v is not a *sink.ScheduleMismatchError", err)
				}
				if mismatch.Got != 1 || mismatch.Want != 2 {
					t.Fatalf("schedule mismatch %+v, want got=1 want=2", mismatch)
				}
			}
		})
	}
	// Rejection must not have truncated or grown the recorded file.
	if data, _ := os.ReadFile(trialsFile); !bytes.Equal(data, trialsGolden) {
		t.Fatal("rejected resume modified the shard file")
	}
}

// TestTrialTimeoutQuarantineCLI: -trialtimeout turns overrunning trials into
// in-slot quarantine records and the run exits with the per-trial-error
// code. Bit-by-bit under total loss with ECF disabled never decides, so
// every trial overruns.
func TestTrialTimeoutQuarantineCLI(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shard.jsonl")
	err := runCLI([]string{"run", "-trials", "3",
		"-alg", "bitbybit", "-loss", "drop", "-cst", "0",
		"-rounds", fmt.Sprint(1 << 30), "-trialtimeout", "25ms",
		"-seed", "3", "-o", path}, os.Stdout)
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err %v, want a deadline trial error", err)
	}
	if code := exitCodeOf(err); code != exitTrial {
		t.Fatalf("exit code %d, want %d (per-trial errors)", code, exitTrial)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := sink.ReadRecords(f)
	if err != nil {
		t.Fatalf("quarantine stream not valid JSONL: %v", err)
	}
	if len(recs) != 3 {
		t.Fatalf("stream carries %d records, want all 3 (quarantined)", len(recs))
	}
	for i, rec := range recs {
		if rec.Index != i || !strings.Contains(rec.Err, "deadline") || rec.Rounds != 0 {
			t.Fatalf("record %d not an in-slot quarantine: %+v", i, rec)
		}
	}
}

// TestInterruptThenResumeByteIdentical is the crash-safety acceptance test:
// cancel a shard mid-sweep (the in-process face of SIGINT), check the clean
// interrupt contract — distinct exit code, resume hint, valid JSONL prefix
// on disk — then resume and compare byte-for-byte against an uninterrupted
// run.
func TestInterruptThenResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	flags := []string{"-trials", "30000", "-seed", "5", "-workers", "2"}
	golden := goldenRun(t, append([]string{"run"}, flags...), filepath.Join(dir, "golden.jsonl"))

	interrupted := filepath.Join(dir, "interrupted.jsonl")
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		// Cancel as soon as the stream has flushed its first records — the
		// moment a real operator's SIGINT would land mid-sweep.
		for {
			if st, err := os.Stat(interrupted); err == nil && st.Size() > 0 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	var out strings.Builder
	err := run(ctx, append(append([]string{"run"}, flags...), "-o", interrupted), &out)
	if err == nil {
		t.Fatal("sweep outran the interrupt; raise -trials")
	}
	if code := exitCodeOf(err); code != exitInterrupt {
		t.Fatalf("exit code %d, want %d (clean interrupt): %v", code, exitInterrupt, err)
	}
	if !strings.Contains(out.String(), "resume with: sweeprun run -resume") {
		t.Fatalf("interrupt did not print the resume command:\n%s", out.String())
	}

	// The interrupted file must already be a valid record prefix (the tail
	// was flushed on the way out), and resuming completes it byte-identically.
	f, ferr := os.Open(interrupted)
	if ferr != nil {
		t.Fatal(ferr)
	}
	recs, rerr := sink.ReadRecords(f)
	f.Close()
	if rerr != nil {
		t.Fatalf("interrupted file is not a clean record prefix: %v", rerr)
	}
	if len(recs) == 0 || len(recs) >= 30000 {
		t.Fatalf("interrupted file has %d records, want a proper prefix", len(recs))
	}
	for i, rec := range recs {
		if rec.Index != i {
			t.Fatalf("interrupted prefix not contiguous at %d: %+v", i, rec)
		}
	}
	if err := runCLI(append(append([]string{"run", "-resume"}, flags...), "-o", interrupted), os.Stdout); err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	resumed, err2 := os.ReadFile(interrupted)
	if err2 != nil {
		t.Fatal(err2)
	}
	if !bytes.Equal(resumed, golden) {
		t.Fatal("interrupt + resume differs from the uninterrupted run")
	}
}

// TestExitCodeClassification pins the documented exit codes onto
// representative failures of each class.
func TestExitCodeClassification(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.jsonl")
	goldenRun(t, []string{"run", "-exp", "T8", "-shard", "0/1"}, good)
	corrupted := filepath.Join(dir, "corrupt.jsonl")
	corruptSeed(t, good, corrupted)

	cases := []struct {
		name string
		args []string
		want int
	}{
		{"usage: no mode", []string{"run"}, exitUsage},
		{"usage: unknown subcommand", []string{"bogus"}, exitUsage},
		{"usage: resume without -o", []string{"run", "-resume", "-exp", "T8"}, exitUsage},
		{"sink: unreadable merge input", []string{"merge", filepath.Join(dir, "missing.jsonl")}, exitSink},
		{"reject: corrupted merge input", []string{"merge", corrupted}, exitReject},
		{"reject: empty verify set", []string{"verify", good, good}, exitReject},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var out strings.Builder
			err := runCLI(tc.args, &out)
			if err == nil {
				t.Fatal("expected an error")
			}
			if code := exitCodeOf(err); code != tc.want {
				t.Fatalf("exit code %d, want %d: %v", code, tc.want, err)
			}
		})
	}
	if code := exitCodeOf(nil); code != exitOK {
		t.Fatalf("nil error classified %d, want 0", code)
	}
}
