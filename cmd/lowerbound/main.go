// Command lowerbound runs the paper's impossibility and lower-bound
// constructions (Section 8) interactively and prints the machine-checked
// witnesses:
//
//	lowerbound -theorem 6 -vspace 256   # pigeonhole + γ composition (half-AC)
//	lowerbound -theorem 4               # NoCD impossibility dichotomy
//	lowerbound -theorem 8               # ◇AC-without-ECF impossibility
//	lowerbound -theorem 9 -vspace 64    # AC-without-ECF lg|V|−1 bound
//
// Each theorem is demonstrated on BOTH branches of its dichotomy: the
// paper's own (correct) algorithm respects the bound / fails termination,
// and a deliberately wrong strawman is caught violating safety in the
// composed execution.
package main

import (
	"flag"
	"fmt"
	"os"

	"adhocconsensus/internal/core"
	"adhocconsensus/internal/lowerbound"
	"adhocconsensus/internal/model"
	"adhocconsensus/internal/valueset"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "lowerbound:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("lowerbound", flag.ContinueOnError)
	var (
		theorem = fs.Int("theorem", 6, "theorem to demonstrate: 4, 6, 7, 8, or 9")
		vspace  = fs.Uint64("vspace", 256, "|V| (must be enumerable)")
		n       = fs.Int("n", 3, "processes per group")
		horizon = fs.Int("horizon", 300, "round horizon for the impossibility runs")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	domain, err := valueset.NewDomain(*vspace)
	if err != nil {
		return err
	}
	groupA := procRange(1, *n)
	groupB := procRange(100, *n)

	switch *theorem {
	case 4:
		return demoTheorem4(domain, groupA, groupB, *horizon)
	case 6:
		return demoTheorem6(domain, groupA, groupB)
	case 7:
		return demoTheorem7(domain, *n)
	case 8:
		return demoTheorem8(domain, groupA, groupB, *horizon)
	case 9:
		return demoTheorem9(domain, *n)
	default:
		return fmt.Errorf("unknown theorem %d (valid: 4, 6, 7, 8, 9)", *theorem)
	}
}

func procRange(from, n int) []model.ProcessID {
	out := make([]model.ProcessID, n)
	for i := 0; i < n; i++ {
		out[i] = model.ProcessID(from + i)
	}
	return out
}

func demoTheorem6(domain valueset.Domain, groupA, groupB []model.ProcessID) error {
	fmt.Printf("Theorem 6: anonymous (half-AC, LS, ECF) consensus needs Ω(lg|V|) rounds after CST\n")
	fmt.Printf("|V| = %d  →  K = ⌊lg|V|/2⌋−1 = %d\n\n", domain.Size, lowerbound.Theorem6K(domain))

	safe, err := lowerbound.RunTheorem6(
		func(v model.Value) model.Automaton { return core.NewAlg2(domain, v) },
		groupA, groupB, domain)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2 (matching upper bound):\n")
	fmt.Printf("  colliding values %d and %d share their broadcast-count prefix through round %d\n",
		safe.Pair.V1, safe.Pair.V2, safe.K)
	fmt.Printf("  decided by K: %v  →  bound respected\n\n", safe.BothDecidedByK)

	fast, err := lowerbound.RunTheorem6(
		func(v model.Value) model.Automaton { return core.NewAlg1(v) },
		groupA, groupB, domain)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 1 (constant-round, too fast for half-AC):\n")
	fmt.Printf("  colliding values %d and %d, both alpha executions decided by K=%d\n",
		fast.Pair.V1, fast.Pair.V2, fast.K)
	if fast.Gamma != nil {
		fmt.Printf("  γ composition: indistinguishable=%v, half-AC-legal=%v, agreement violated=%v\n",
			fast.Gamma.Indistinguishable, fast.Gamma.DetectorLegal, fast.Gamma.AgreementViolated)
		fmt.Printf("  γ decided values: %v\n", fast.Gamma.Gamma.Execution.DecidedValues())
	}
	return nil
}

func demoTheorem7(domain valueset.Domain, n int) error {
	idD := valueset.MustDomain(1 << 10)
	fmt.Printf("Theorem 7: non-anonymous (half-AC, LS, ECF) consensus needs Ω(min{lg|V|, lg(|I|/n)}) rounds\n")
	k := lowerbound.Theorem6K(domain)
	factory := func(id model.ProcessID, v model.Value) model.Automaton {
		return core.NewNonAnon(idD, domain, model.Value(id), v)
	}
	subsets := [][]model.ProcessID{procRange(1, n), procRange(100, n), procRange(200, n)}
	report, err := lowerbound.RunTheorem7(factory, subsets, domain, k)
	if err != nil {
		return err
	}
	fmt.Printf("  colliding pair: value %d over %v and value %d over %v, prefix length %d\n",
		report.Pair.V1, report.Pair.P1, report.Pair.V2, report.Pair.P2, report.K)
	fmt.Printf("  decided by K: %v  →  unique IDs do not beat the bound\n", report.BothDecidedByK)
	return nil
}

func demoTheorem4(domain valueset.Domain, groupA, groupB []model.ProcessID, horizon int) error {
	fmt.Printf("Theorem 4: no (NoCD, LS, ECF) consensus algorithm exists\n\n")
	honest, err := lowerbound.RunTheorem4(
		lowerbound.Anon(func(v model.Value) model.Automaton { return core.NewAlg2(domain, v) }),
		groupA, groupB, 1, 2, horizon)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 2 with advice pinned to ±: %s\n\n", honest.Detail)

	strawman, err := lowerbound.RunTheorem4(
		lowerbound.Anon(func(v model.Value) model.Automaton {
			return &lowerbound.Timeout{Value: v, After: 5}
		}), groupA, groupB, 1, 2, horizon)
	if err != nil {
		return err
	}
	fmt.Printf("Timeout strawman (decides after 5 rounds): %s\n", strawman.Detail)
	return nil
}

func demoTheorem8(domain valueset.Domain, groupA, groupB []model.ProcessID, horizon int) error {
	fmt.Printf("Theorem 8: no (◇AC, LS) consensus algorithm exists without ECF\n\n")
	honest, err := lowerbound.RunTheorem8(
		lowerbound.Anon(func(v model.Value) model.Automaton { return core.NewAlg3(domain, v) }),
		groupA, groupB, 1, 2, horizon)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 3 run with an eventually-accurate detector: %s\n\n", honest.Detail)

	strawman, err := lowerbound.RunTheorem8(
		func(_ model.ProcessID, v model.Value) model.Automaton {
			return lowerbound.NewConstant(v, 1, 6)
		}, groupA, groupB, 1, 2, horizon)
	if err != nil {
		return err
	}
	fmt.Printf("Constant strawman (always decides 1): %s\n", strawman.Detail)
	return nil
}

func demoTheorem9(domain valueset.Domain, n int) error {
	fmt.Printf("Theorem 9: anonymous (AC, NoCM) consensus without ECF needs lg|V|−1 rounds\n")
	fmt.Printf("|V| = %d  →  K = %d\n\n", domain.Size, lowerbound.Theorem9K(domain))
	safe, err := lowerbound.RunTheorem9(
		func(v model.Value) model.Automaton { return core.NewAlg3(domain, v) }, n, domain)
	if err != nil {
		return err
	}
	fmt.Printf("Algorithm 3: colliding values %d, %d; decided by K: %v  →  bound respected\n\n",
		safe.V1, safe.V2, safe.BothDecidedByK)

	fast, err := lowerbound.RunTheorem9(
		func(v model.Value) model.Automaton { return &lowerbound.Timeout{Value: v, After: 2} }, n, domain)
	if err != nil {
		return err
	}
	fmt.Printf("Timeout strawman: decided by K: %v; composed execution indistinguishable=%v, agreement violated=%v\n",
		fast.BothDecidedByK, fast.Indistinguishable, fast.AgreementViolated)
	return nil
}
