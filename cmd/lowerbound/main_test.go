package main

import (
	"fmt"
	"testing"
)

func TestRunEachTheorem(t *testing.T) {
	for _, theorem := range []int{4, 6, 7, 8, 9} {
		t.Run(fmt.Sprintf("theorem-%d", theorem), func(t *testing.T) {
			args := []string{"-theorem", fmt.Sprint(theorem), "-vspace", "64", "-horizon", "200"}
			if err := run(args); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestRunUnknownTheorem(t *testing.T) {
	if err := run([]string{"-theorem", "11"}); err == nil {
		t.Fatal("unknown theorem accepted")
	}
}

func TestRunBadDomain(t *testing.T) {
	if err := run([]string{"-vspace", "0"}); err == nil {
		t.Fatal("empty domain accepted")
	}
}
