// Command benchjson converts `go test -bench` text output into the
// repository's BENCH_*.json snapshot format, so the CI benchmark job can
// publish machine-readable scaling curves without hand-editing:
//
//	go test -run '^$' -bench BenchmarkEngineScalingCurves -benchmem . \
//	    | benchjson -key scaling_curves -note "ubuntu-latest, 4 vCPU" \
//	    > BENCH_pr7.json
//
// Every benchmark result line becomes one entry (name, iterations, ns/op,
// custom metrics like ns/round, B/op, allocs/op), and results whose names
// carry the scaling-matrix axes (".../sched=vK/w=N") are additionally
// folded into a v2-over-v1 speedup table per (subbenchmark, workers) point
// — the number the seed-schedule acceptance criterion reads.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// result is one parsed benchmark line.
type result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	NsPerRound  float64 `json:"ns_per_round,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// speedup is one (benchmark point, workers) row of the v1/v2 comparison.
// Allocation counts ride along with the timing so an allocation regression
// is visible in the same table that certifies the speedup (a schedule that
// wins ns/round by allocating per round is not a win).
type speedup struct {
	Point        string  `json:"point"`
	Workers      int     `json:"workers"`
	V1NsPerRound float64 `json:"v1_ns_per_round"`
	V2NsPerRound float64 `json:"v2_ns_per_round"`
	// V2OverV1 is v1 time over v2 time: >1 means v2 is faster.
	V2OverV1      float64 `json:"v2_over_v1"`
	V1AllocsPerOp int64   `json:"v1_allocs_per_op"`
	V2AllocsPerOp int64   `json:"v2_allocs_per_op"`
}

// snapshot is the emitted document; the field order matches the existing
// BENCH_*.json files.
type snapshot struct {
	Generated  string    `json:"generated"`
	CPU        string    `json:"cpu"`
	Go         string    `json:"go"`
	GoMaxProcs int       `json:"gomaxprocs"`
	Note       string    `json:"note,omitempty"`
	Results    []result  `json:"-"`
	Speedups   []speedup `json:"-"`
}

func run(args []string, in io.Reader, out io.Writer) error {
	fs := flag.NewFlagSet("benchjson", flag.ContinueOnError)
	key := fs.String("key", "results", "JSON key for the parsed result array")
	note := fs.String("note", "", "free-form provenance note")
	if err := fs.Parse(args); err != nil {
		return err
	}
	snap, err := parse(in)
	if err != nil {
		return err
	}
	snap.Generated = time.Now().UTC().Format("2006-01-02")
	snap.Go = runtime.Version()
	snap.Note = *note
	return write(out, snap, *key)
}

// benchLine matches one result line:
//
//	BenchmarkX/a=1/w=2-8   100   12345 ns/op   99.5 ns/round   64 B/op   3 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.*)$`)

// schedAxes extracts the scaling-matrix axes from a benchmark name:
// everything but /sched=vK/ names the point, w=N the worker count.
var schedAxes = regexp.MustCompile(`^(.*)/sched=v(\d+)(.*/w=(\d+).*)$`)

// parse reads `go test -bench` text: the cpu/gomaxprocs header and every
// result line. Non-benchmark lines (PASS, ok, warmup noise) are skipped.
func parse(in io.Reader) (*snapshot, error) {
	snap := &snapshot{GoMaxProcs: runtime.GOMAXPROCS(0)}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if cpu, ok := strings.CutPrefix(line, "cpu: "); ok {
			snap.CPU = cpu
			continue
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		// The -\d+ suffix the matcher strips is GOMAXPROCS; recover it from
		// the raw name so the snapshot records the bench host's value.
		if i := strings.LastIndex(strings.Fields(line)[0], "-"); i > 0 {
			if p, err := strconv.Atoi(strings.Fields(line)[0][i+1:]); err == nil {
				snap.GoMaxProcs = p
			}
		}
		r := result{Name: m[1]}
		n, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("iterations in %q: %w", line, err)
		}
		r.Iterations = n
		if err := parseMetrics(m[3], &r); err != nil {
			return nil, fmt.Errorf("metrics in %q: %w", line, err)
		}
		snap.Results = append(snap.Results, r)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if len(snap.Results) == 0 {
		return nil, fmt.Errorf("no benchmark result lines in input")
	}
	snap.Speedups = speedups(snap.Results)
	return snap, nil
}

// parseMetrics decodes the "value unit" pairs after the iteration count.
func parseMetrics(s string, r *result) error {
	fields := strings.Fields(s)
	for i := 0; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return err
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "ns/round":
			r.NsPerRound = v
		case "B/op":
			r.BytesPerOp = int64(v)
		case "allocs/op":
			r.AllocsPerOp = int64(v)
		}
	}
	return nil
}

// speedups folds results named ".../sched=vK/.../w=N" into per-point v2
// over v1 ratios. Points present under only one schedule are skipped.
func speedups(results []result) []speedup {
	type axes struct {
		point   string
		workers int
	}
	byPoint := make(map[axes]map[int]result) // sched -> result line
	for _, r := range results {
		m := schedAxes.FindStringSubmatch(r.Name)
		if m == nil || r.NsPerRound == 0 {
			continue
		}
		sched, _ := strconv.Atoi(m[2])
		w, _ := strconv.Atoi(m[4])
		a := axes{point: m[1] + m[3], workers: w}
		if byPoint[a] == nil {
			byPoint[a] = make(map[int]result)
		}
		byPoint[a][sched] = r
	}
	var out []speedup
	for a, by := range byPoint {
		v1, ok1 := by[1]
		v2, ok2 := by[2]
		if !ok1 || !ok2 {
			continue
		}
		out = append(out, speedup{
			Point:         a.point,
			Workers:       a.workers,
			V1NsPerRound:  v1.NsPerRound,
			V2NsPerRound:  v2.NsPerRound,
			V2OverV1:      v1.NsPerRound / v2.NsPerRound,
			V1AllocsPerOp: v1.AllocsPerOp,
			V2AllocsPerOp: v2.AllocsPerOp,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Point != out[j].Point {
			return out[i].Point < out[j].Point
		}
		return out[i].Workers < out[j].Workers
	})
	return out
}

// write emits the snapshot with the result array under the chosen key,
// keeping the stable header field order of the committed BENCH files
// (generated, cpu, go, gomaxprocs, note, results, speedups) — a map would
// sort keys alphabetically.
func write(w io.Writer, snap *snapshot, key string) error {
	fields := []struct {
		k string
		v any
	}{
		{"generated", snap.Generated},
		{"cpu", snap.CPU},
		{"go", snap.Go},
		{"gomaxprocs", snap.GoMaxProcs},
	}
	if snap.Note != "" {
		fields = append(fields, struct {
			k string
			v any
		}{"note", snap.Note})
	}
	fields = append(fields, struct {
		k string
		v any
	}{key, snap.Results})
	if len(snap.Speedups) > 0 {
		fields = append(fields, struct {
			k string
			v any
		}{"speedup_v2_over_v1", snap.Speedups})
	}
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, f := range fields {
		b, err := json.MarshalIndent(f.v, "  ", "  ")
		if err != nil {
			return err
		}
		fmt.Fprintf(&buf, "  %q: %s", f.k, b)
		if i < len(fields)-1 {
			buf.WriteString(",")
		}
		buf.WriteString("\n")
	}
	buf.WriteString("}\n")
	_, err := w.Write(buf.Bytes())
	return err
}
