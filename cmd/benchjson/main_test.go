package main

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
)

const sampleBench = `goos: linux
goarch: amd64
pkg: adhocconsensus
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkEngineScalingCurves/n=64/sched=v1/w=1-4         	       2	  25143690 ns/op	     98214 ns/round	 6673980 B/op	     151 allocs/op
BenchmarkEngineScalingCurves/n=64/sched=v1/w=4-4         	       2	  29304673 ns/op	    114466 ns/round	 6869876 B/op	     614 allocs/op
BenchmarkEngineScalingCurves/n=64/sched=v2/w=1-4         	       2	  23845685 ns/op	     93143 ns/round	 6665324 B/op	     147 allocs/op
BenchmarkEngineScalingCurves/n=64/sched=v2/w=4-4         	       2	  28224484 ns/op	     57233 ns/round	 6863508 B/op	     610 allocs/op
BenchmarkEngineRoundThroughput/n=8/decisions/w=1-4       	    7279	    374210 ns/op	      1462 ns/round	    8809 B/op	      49 allocs/op
PASS
ok  	adhocconsensus	0.684s
`

func TestParseBenchOutput(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Results) != 5 {
		t.Fatalf("parsed %d results, want 5", len(snap.Results))
	}
	if snap.CPU != "Intel(R) Xeon(R) Processor @ 2.10GHz" {
		t.Fatalf("cpu = %q", snap.CPU)
	}
	if snap.GoMaxProcs != 4 {
		t.Fatalf("gomaxprocs = %d, want 4 (from the -4 name suffix)", snap.GoMaxProcs)
	}
	r := snap.Results[0]
	if r.Name != "BenchmarkEngineScalingCurves/n=64/sched=v1/w=1" ||
		r.Iterations != 2 || r.NsPerOp != 25143690 || r.NsPerRound != 98214 ||
		r.BytesPerOp != 6673980 || r.AllocsPerOp != 151 {
		t.Fatalf("first result parsed as %+v", r)
	}
}

func TestSpeedupTable(t *testing.T) {
	snap, err := parse(strings.NewReader(sampleBench))
	if err != nil {
		t.Fatal(err)
	}
	if len(snap.Speedups) != 2 {
		t.Fatalf("speedup rows: %d, want 2 (w=1 and w=4)", len(snap.Speedups))
	}
	w4 := snap.Speedups[1]
	if w4.Workers != 4 || w4.Point != "BenchmarkEngineScalingCurves/n=64/w=4" {
		t.Fatalf("second row = %+v", w4)
	}
	if want := 114466.0 / 57233.0; math.Abs(w4.V2OverV1-want) > 1e-9 {
		t.Fatalf("v2_over_v1 = %v, want %v", w4.V2OverV1, want)
	}
	if w4.V1AllocsPerOp != 614 || w4.V2AllocsPerOp != 610 {
		t.Fatalf("allocs/op columns = %d/%d, want 614/610", w4.V1AllocsPerOp, w4.V2AllocsPerOp)
	}
	// The non-matrix result must not produce a row.
	for _, s := range snap.Speedups {
		if strings.Contains(s.Point, "RoundThroughput") {
			t.Fatalf("non-matrix benchmark leaked into the speedup table: %+v", s)
		}
	}
}

func TestEndToEndJSON(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-key", "scaling_curves", "-note", "test host"},
		strings.NewReader(sampleBench), &out); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, out.String())
	}
	for _, key := range []string{"generated", "cpu", "go", "gomaxprocs", "note", "scaling_curves", "speedup_v2_over_v1"} {
		if _, ok := doc[key]; !ok {
			t.Fatalf("output missing %q:\n%s", key, out.String())
		}
	}
	if doc["note"] != "test host" {
		t.Fatalf("note = %v", doc["note"])
	}
}

func TestParseRejectsEmptyInput(t *testing.T) {
	if _, err := parse(strings.NewReader("PASS\nok x 0.1s\n")); err == nil {
		t.Fatal("empty bench input accepted")
	}
}
