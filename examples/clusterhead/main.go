// Clusterhead election: the §1.4 scenario "for many activities, such as the
// selection of a clusterhead for a network clustering scheme, leader
// election is necessary. Consensus run on unique identifiers is an obvious,
// reliable solution."
//
// Devices have MAC-like 48-bit identifiers, so |I| >> |V| and the right
// tool is Algorithm 2 run directly on the IDs (which is exactly what
// AlgorithmBitByBit over the ID values does). The agreed value IS the
// elected clusterhead. A rotating wake-up service (as a backoff protocol
// would realize) drives contention.
//
//	go run ./examples/clusterhead
package main

import (
	"fmt"
	"log"

	"adhocconsensus"
)

func main() {
	// 48-bit MAC-suffix identifiers of the five devices in radio range.
	macs := []adhocconsensus.Value{
		0x9a_3f_11_20_41_07,
		0x1c_b2_99_00_5e_23,
		0xe0_44_1a_fa_02_99,
		0x5d_10_c3_88_61_40,
		0xa7_72_00_c4_19_0b,
	}

	report, err := adhocconsensus.Config{
		Algorithm:  adhocconsensus.AlgorithmBitByBit,
		Values:     macs,
		Domain:     1 << 48,
		Contention: adhocconsensus.ContentionBackoff, // realistic: backoff, not an oracle
		Loss:       adhocconsensus.LossProbabilistic,
		LossP:      0.25,
		ECFRound:   10,
		Seed:       7,
		MaxRounds:  20000,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("clusterhead elected: %012x (after %d rounds)\n", uint64(report.Agreed), report.Rounds)
	for i, mac := range macs {
		role := "member"
		if mac == report.Agreed {
			role = "CLUSTERHEAD"
		}
		fmt.Printf("  device %d (%012x): %s\n", i+1, uint64(mac), role)
	}
}
