// Aggregation vote: Kumar's §1.4 proposal — before a sensor cluster reports
// to the data sink, its members run consensus on WHAT to report, so every
// device gets a vote and only one message travels onward.
//
// This cluster sits in a noisy corner of a multi-hop network: neighboring
// regions interfere forever, so no round ever guarantees delivery (no ECF).
// That is Algorithm 3's home turf: with an accurate zero-complete detector
// (carrier sensing), the cluster agrees using collision notifications
// alone. The example also shows the non-anonymous alternative when devices
// have a small ID space.
//
//	go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"adhocconsensus"
)

func main() {
	// Each node quantizes its local temperature reading to {0..255} and the
	// cluster must agree on a single reading to forward.
	readings := []adhocconsensus.Value{181, 183, 179, 182}

	report, err := adhocconsensus.Config{
		Algorithm: adhocconsensus.AlgorithmTreeWalk,
		Values:    readings,
		Domain:    256,
		Loss:      adhocconsensus.LossDrop, // NO message is ever delivered cross-node
		Seed:      11,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cluster reports reading %d (agreed in %d rounds with zero deliveries)\n",
		uint64(report.Agreed), report.Rounds)

	// The same vote where the devices have installer-assigned 4-bit IDs:
	// the §7.3 leader-relay algorithm elects over the tiny ID space and
	// relays the leader's reading, beating lg|V| when |I| < |V|.
	relay, err := adhocconsensus.Config{
		Algorithm: adhocconsensus.AlgorithmLeaderRelay,
		Values:    readings,
		Domain:    1 << 32, // high-resolution readings this time
		IDSpace:   16,
		IDs:       []adhocconsensus.Value{2, 5, 11, 14},
		Seed:      11,
		MaxRounds: 5000,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("leader-relay variant agreed on %d in %d rounds (vs ~%d for bit-by-bit on 32-bit values)\n",
		uint64(relay.Agreed), relay.Rounds, 2*(32+1))
}
