// Multihop flood: the paper's conclusion names multihop networks and
// reliable broadcast as the next step for the model. This example floods a
// firmware-update announcement across an 8x8 sensor grid with 30% per-link
// loss, using slotted relaying plus zero-complete collision detection (the
// carrier-sensing detector the paper calls practical) to keep the flood
// alive: a node whose relay budget is drained re-arms whenever its
// neighborhood is still noisy.
//
//	go run ./examples/multihop-flood
package main

import (
	"fmt"
	"log"

	"adhocconsensus/internal/detector"
	"adhocconsensus/internal/model"
	"adhocconsensus/internal/multihop"
)

func main() {
	topo, err := multihop.NewGrid(8, 8, 1.0, 1.1)
	if err != nil {
		log.Fatal(err)
	}

	flooders := make([]*multihop.Flooder, topo.Size())
	nodes := make([]multihop.Node, topo.Size())
	for i := range nodes {
		flooders[i] = multihop.NewFlooder(i, 4 /* slots */, 3 /* relays */)
		nodes[i] = flooders[i]
	}
	net, err := multihop.NewNetwork(topo, nodes, detector.ZeroAC, 0.30, 42)
	if err != nil {
		log.Fatal(err)
	}

	const source = 0 // corner node announces
	const firmwareVersion = 0xF1E2
	flooders[source].Inject(model.Value(firmwareVersion))

	covered := func() bool {
		for _, f := range flooders {
			if !f.Informed() {
				return false
			}
		}
		return true
	}
	rounds, done := net.RunUntil(covered, 5000)
	if !done {
		log.Fatal("flood failed to cover the network")
	}

	fmt.Printf("announcement reached all %d nodes in %d rounds\n", topo.Size(), rounds)
	fmt.Printf("source eccentricity (distance lower bound): %d hops\n", topo.Eccentricity(source))
	fmt.Printf("per-link loss: 30%%, relay slots: 4\n")
}
