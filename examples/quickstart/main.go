// Quickstart: four wireless nodes agree on one value over an unreliable
// broadcast channel, using Algorithm 2 (the weakest-detector algorithm)
// with all defaults: lossless channel stabilized from round 1, honest
// zero-complete eventually-accurate detector, wake-up service.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"adhocconsensus"
)

func main() {
	report, err := adhocconsensus.Config{
		Algorithm: adhocconsensus.AlgorithmBitByBit,
		Values:    []adhocconsensus.Value{3, 7, 7, 1},
		Domain:    16, // values are drawn from {0, ..., 15}
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("agreed on %d in %d rounds\n", uint64(report.Agreed), report.Rounds)
	for id, d := range report.Decisions {
		fmt.Printf("  node %d decided at round %d\n", id, d.Round)
	}
}
