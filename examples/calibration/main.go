// Calibration: the sensor-network scenario from the paper's §1.4 — devices
// in one region must agree on a calibration offset for their sensors,
// because readings calibrated against different offsets cannot be
// aggregated.
//
// The radio is realistic: 35% message loss, capture effect, a detector that
// emits false positives until the channel quiets down at round 20, and one
// node that crashes mid-protocol. Algorithm 1 still settles within two
// rounds of stabilization because its detector is majority-complete.
//
//	go run ./examples/calibration
package main

import (
	"fmt"
	"log"

	"adhocconsensus"
)

func main() {
	// Each node proposes the offset (in millivolts, here quantized to
	// {0..1023}) it measured against the reference source.
	measuredOffsets := []adhocconsensus.Value{512, 509, 514, 512, 510, 508}

	const channelQuietFrom = 20 // higher-level coordination quiets neighbors by here

	report, err := adhocconsensus.Config{
		Algorithm: adhocconsensus.AlgorithmPropose, // constant-round after stabilization
		Values:    measuredOffsets,
		Domain:    1024,

		Loss:     adhocconsensus.LossCapture,
		LossP:    0.35,
		ECFRound: channelQuietFrom,

		Stable:            channelQuietFrom,
		DetectorRace:      channelQuietFrom,
		FalsePositiveRate: 0.25,

		// Node 3's battery dies right after it broadcasts in round 5.
		Crashes: []adhocconsensus.Crash{{Process: 3, Round: 5, AfterSend: true}},

		Seed: 2025,
	}.Run()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("cluster calibration offset: %d mV\n", uint64(report.Agreed))
	fmt.Printf("settled in %d rounds (channel stabilized at round %d)\n",
		report.Rounds, channelQuietFrom)
	for id := 1; id <= len(measuredOffsets); id++ {
		if d, ok := report.Decisions[adhocconsensus.ProcessID(id)]; ok {
			fmt.Printf("  sensor %d: offset %d (round %d)\n", id, uint64(d.Value), d.Round)
		} else {
			fmt.Printf("  sensor %d: crashed\n", id)
		}
	}
}
