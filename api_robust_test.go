package adhocconsensus

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"
)

// TestRunTrialsContextCancellation: a canceled context stops the run with a
// classifiable error instead of aggregating a partial prefix.
func TestRunTrialsContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := Config{Algorithm: AlgorithmBitByBit, Values: []Value{1, 2, 3}, Domain: 8, Seed: 7}
	_, err := cfg.RunTrialsContext(ctx, 50, 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled on the chain", err)
	}
	if !strings.HasPrefix(err.Error(), "adhocconsensus: ") {
		t.Fatalf("public error lost its prefix: %v", err)
	}
}

// TestTrialTimeoutQuarantine: a configuration whose trials exceed the
// deadline streams quarantine results (Err set, digest zero) in their
// ordered slots and keeps the stream complete.
func TestTrialTimeoutQuarantine(t *testing.T) {
	// Bit-by-bit under total loss with ECF disabled never decides (nobody
	// hears anyone), so every trial runs its enormous horizon until the
	// watchdog stops it.
	cfg := Config{
		Algorithm:    AlgorithmBitByBit,
		Values:       []Value{1, 2, 3},
		Domain:       8,
		Loss:         LossDrop,
		ECFRound:     0,
		MaxRounds:    1 << 30,
		Seed:         3,
		TrialTimeout: 30 * time.Millisecond,
	}
	var got []TrialResult
	err := cfg.StreamTrials(3, 2, 0, 1, collectSink{&got})
	if err == nil || !strings.Contains(err.Error(), "deadline") {
		t.Fatalf("err %v, want a deadline trial error", err)
	}
	if len(got) != 3 {
		t.Fatalf("stream delivered %d results, want all 3 (quarantined)", len(got))
	}
	for i, r := range got {
		if r.Trial != i {
			t.Fatalf("result %d out of order: %+v", i, r)
		}
		if r.Err == "" || r.Rounds != 0 {
			t.Fatalf("trial %d not quarantined: %+v", i, r)
		}
		if r.Err != "sim: trial exceeded its 30ms deadline" {
			t.Fatalf("quarantine message %q not deterministic", r.Err)
		}
	}
}

// TestStreamTrialsContextPrefix: cancellation mid-stream delivers a
// contiguous prefix.
func TestStreamTrialsContextPrefix(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cfg := Config{Algorithm: AlgorithmBitByBit, Values: []Value{1, 2, 3}, Domain: 8, Seed: 7}
	var got []TrialResult
	err := cfg.StreamTrialsContext(ctx, 200, 2, 0, 1, cancelAfter{&got, 5, cancel})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err %v, want context.Canceled", err)
	}
	if len(got) < 5 || len(got) >= 200 {
		t.Fatalf("%d results delivered after cancel at 5", len(got))
	}
	for i, r := range got {
		if r.Trial != i {
			t.Fatalf("canceled stream not a contiguous prefix at %d: %+v", i, r)
		}
	}
}

type cancelAfter struct {
	results *[]TrialResult
	k       int
	cancel  context.CancelFunc
}

func (s cancelAfter) Consume(r TrialResult) error {
	*s.results = append(*s.results, r)
	if len(*s.results) == s.k {
		s.cancel()
	}
	return nil
}
