// Package adhocconsensus is a library for fault-tolerant consensus in
// single-hop wireless ad hoc networks with unreliable broadcast, receiver-
// side collision detectors, and contention managers — a full implementation
// of "Consensus and Collision Detectors in Wireless Ad Hoc Networks"
// (Chockler, Demirbas, Gilbert, Newport, Nolte; PODC 2005 / Newport's MIT
// thesis, 2006).
//
// # The model
//
// Processes run in synchronized rounds over a single-hop radio channel on
// which ANY receiver may lose ANY subset of the messages broadcast in a
// round (the paper's deliberate break from the "total collision model").
// Two services tame the chaos:
//
//   - a collision detector returns, each round, either ± ("you may have
//     lost a message") or null, and is classified by completeness (when ±
//     is guaranteed) × accuracy (when null is guaranteed) — the classes AC,
//     maj-AC, half-AC, 0-AC and their eventually-accurate ◇ variants;
//   - a contention manager advises each process active or passive, and
//     eventually stabilizes on a single active broadcaster (wake-up
//     service / leader election service), realizable by backoff.
//
// # The algorithms
//
// Four consensus algorithms cover the solvable corner of the model:
//
//   - AlgorithmPropose (Alg 1): constant rounds after stabilization, needs
//     majority completeness.
//   - AlgorithmBitByBit (Alg 2): O(lg|V|) rounds, needs only zero
//     completeness — the weakest useful detector.
//   - AlgorithmTreeWalk (Alg 3): works with NO delivery guarantee at all
//     (collision notifications are the only channel), needs an accurate
//     detector.
//   - AlgorithmLeaderRelay (§7.3): non-anonymous, O(min{lg|V|, lg|I|}).
//
// The matching lower bounds (Theorems 4–9) are executable in
// internal/lowerbound and demonstrated by cmd/lowerbound.
//
// # Performance
//
// The simulator's round loop is engineered for near-zero steady-state
// allocation, because every experiment table drives thousands of full
// executions through it:
//
//   - dense process state: the engine and the goroutine runtime index all
//     per-process bookkeeping (crash schedule, contention advice,
//     broadcasts, halted/decided flags) by a sorted process table built
//     once per run — no per-round maps;
//   - compact multisets: receive sets use a slice-backed small
//     representation (spilling to a map past 16 distinct messages) with
//     in-place Reset/UnionInto, and are recycled through a sync.Pool
//     across rounds and runs;
//   - trace modes: Config.TraceDecisionsOnly (engine.TraceDecisionsOnly
//     internally) skips recording per-round views entirely for callers
//     that only read decisions — the default for the experiment tables —
//     while the full mode stays byte-for-byte equivalent on decisions;
//   - columnar trace arena: full traces record into model.TraceArena —
//     one flat slice per view field plus a shared receive arena of
//     (message, count) segments — instead of per-round map[ProcessID]View,
//     so recording a full execution is also allocation-free in steady
//     state (n=8: 60 allocs per 256-round run vs 49 decisions-only, down
//     from 4065). Views materialize lazily through the model accessors;
//     Execution.MaterializeRounds is the escape hatch back to the legacy
//     []Round shape;
//   - parallel round core: Config.DeliveryWorkers (engine.Config
//     .DeliveryWorkers) shards each round's O(n·senders) delivery loop
//     across a worker pool for large systems — intra-run parallelism
//     complementing the sweep runner's cross-trial parallelism — with
//     decisions and traces byte-identical at any worker count; under
//     SeedScheduleV2 the same pool also fills the adversary's loss plan
//     and generates the round's messages, making the whole round body
//     parallel. DeliveryWorkersAuto sizes the pool from a one-time
//     startup calibration (engine.Calibrate measures this host's
//     shard-barrier cost against its per-row fill cost and derives both
//     the worker count and the auto-off system-size threshold); the
//     sharded path still auto-disables for order-dependent components
//     (v1 adversaries draw their plans sequentially outside the pool, a
//     detector with FalsePositiveRate noise keeps sequential delivery).
//
// Headline numbers from BenchmarkEngineRoundThroughput (Algorithm 2, 8
// processes, 30% probabilistic loss, 256 rounds/run, one 2.7GHz core),
// against the pre-refactor engine:
//
//	                      ns/round   allocs/run
//	seed (full trace)         5749         9589
//	full trace (PR 4)         1402           60   (4.1× / 160×)
//	decisions only            1185           49   (4.9× / 196×)
//
// BENCH_baseline.json records the full benchmark suite; regenerate it with
// go test -run '^$' -bench . -benchmem. BENCH_pr2.json snapshots the suite
// after the declarative-scenario refactor, BENCH_pr3.json after the
// streaming-sink subsystem and the message-recycling satellite,
// BENCH_pr4.json after the columnar trace arena and parallel delivery core
// (benchmark matrix now n = 8/64/256/1024 × trace mode × worker count),
// BENCH_pr5.json after the replay subsystem, BENCH_pr6.json after the
// crash-safety layer (same-box A/B: healthy-path cost within noise, alloc
// counts unchanged), and BENCH_pr7.json after the seed-schedule-v2
// parallel round core (BenchmarkEngineScalingCurves: w × n × schedule,
// with the v2-over-v1 speedup table CI regenerates on a multicore
// runner).
//
// # Scenario sweeps
//
// Underneath the public Config sits a declarative scenario layer
// (internal/sim): a run is a sim.Scenario value — algorithm, detector
// class, contention manager, loss model, topology of crashes, seed — a
// sweep is a grid of scenarios (sim.Sweep takes the cross-product of
// mutation axes times a trial count), and a worker-pool runner executes
// trials in parallel. Determinism is preserved by construction: every
// randomized component is built inside its trial from the scenario's seed,
// and per-trial seeds derive from the sweep seed via a splitmix64 mix of
// (sweep seed, scenario index, trial index), so results are byte-identical
// at any worker count. Config.Run translates to a Scenario internally;
// Config.RunTrials exposes the parallel path publicly (cmd/consensus-sim
// -trials/-parallel); every experiment table in internal/experiments is a
// scenario grid on the same runner (cmd/benchtab -workers).
//
// # Seed schedules
//
// A seed schedule is the rule by which a trial's seed expands into the
// loss adversary's per-round random draws (detector noise and backoff are
// unaffected). Config.SeedSchedule selects it:
//
//   - SeedScheduleV1 (the default; 0 means v1) is the historical
//     sequential schedule: one generator per adversary, advanced draw by
//     draw in receiver-major order. Order-dependent by construction, so
//     the plan must be drawn single-threaded — but byte-identical to
//     every recording made before schedules were versioned.
//   - SeedScheduleV2 is the counter-based schedule (internal/seedstream):
//     splitmix64's finalizer keys an independent stream per (trial seed,
//     round, receiver), and the i-th draw of a stream is a pure function
//     At(key, i) of its index. A receiver's loss row can therefore be
//     filled at any time, in any order, by any worker — which is what
//     lets the delivery pool fill the plan in shards — and the result is
//     byte-identical at every worker count, goroutine runtime included.
//
// The schedule version is part of a recording's identity: sim.Scenario
// and sink.Params carry it, fingerprints differ between versions (v1
// fingerprints are unchanged, pinned by golden test), and "sweeprun
// merge"/-resume reject mixed-schedule inputs with a typed, positioned
// error (sink.ScheduleMismatchError) — v1 and v2 draws differ, so their
// trials are different experiments even at the same seed. v1 remains
// fully selectable for byte-identical replay of historical recordings.
//
// # Streaming sinks and sharded sweeps
//
// Sweeps stream instead of accumulating: the runner delivers each trial's
// digested result, in trial order, into a result sink (internal/sink) —
// in-memory collection, buffered JSONL with a stable versioned schema
// (scenario fingerprint, trial seed, rounds, decision digest,
// detector/CM/loss params), or a fan-out to several sinks. Publicly,
// Config.ResultSink taps the per-trial stream of RunTrials, and
// Config.StreamTrials executes one shard of a larger run: trial seeds
// depend only on Config.Seed and the global trial index, so k machines
// each running one shard produce JSONL files whose union is byte-identical
// to the single-machine sweep. cmd/sweeprun drives both directions — "run"
// executes a shard of an experiment grid or configuration sweep, "merge"
// folds shard files back into exactly the tables cmd/benchtab prints and
// the statistics consensus-sim -trials prints (golden-tested, with
// fingerprint verification rejecting shards from mismatched grids or
// versions). consensus-sim -trials additionally reports per-trial seed
// provenance, so one anomalous trial out of a million can be re-run
// standalone by passing its derived seed to a single Run.
//
// # Replay and forensics
//
// The record→replay→verify loop (internal/replay) makes recorded runs
// first-class artifacts:
//
//   - universal work items: the bespoke pipelines — the lower-bound
//     constructions T6/T7/T9, the A3 substrates, the M1 multihop floods —
//     declare their trials as serializable sink.WorkItems (kind, canonical
//     parameters, seed) dispatched through registered executors, so the same
//     deterministic shard-and-merge machinery that serves scenario grids
//     serves EVERY experiment ("sweeprun run -exp M1 -shard 0/4"; k-shard
//     merges are golden-tested byte-identical);
//   - render-without-rerun: "sweeprun replay" (and merge) reproduce every
//     experiment table from merged JSONL alone — fingerprint-verified,
//     byte-identical, and without invoking the engine; re-rendering a
//     recorded run is an order of magnitude cheaper than re-simulating it
//     (BenchmarkReplayRender);
//   - forensic re-execution: "sweeprun verify" flags recorded trials worth
//     auditing (undecided, agreement/validity violations, top-k slowest, or
//     a full digest recheck), re-runs each flagged seed at full trace
//     fidelity, validates the fresh columnar trace against the recorded
//     decision digest and the formal model's legality constraints, and
//     writes per-trial trace bundles. Publicly, Config.Replay audits one
//     recorded TrialResult and Config.ReplayFlagged sweeps a recorded run
//     for anomalies. A recorded agreement violation is only evidence when
//     its execution replays exactly — this is what makes the sweep pipeline
//     audit-grade;
//   - arena recycling: executions expose Release, handing the columnar
//     trace arena back to a shape-keyed pool, so trace-heavy loops (the
//     replay verifier, validation pipelines) allocate nothing per run in
//     steady state.
//
// # Robustness and recovery
//
// Million-trial sweeps run on real machines: processes get SIGKILLed,
// disks fill, automata under adversarial schedules hit bugs. The sweep
// pipeline is crash-safe end to end, without giving up byte-identity:
//
//   - panic isolation: a trial that panics — in the automaton, the
//     detector, or a work-item executor — does not kill the worker pool.
//     The runner recovers it into the trial's result (engine.PanicError,
//     deterministic message, stack preserved for forensics), streams a
//     quarantine record (err set, digest zero) in the trial's ordered
//     slot, and finishes the sweep; the first per-trial error surfaces
//     after the sweep as a typed error. Streams stay byte-identical at
//     any worker count even when trials panic;
//   - deadlines and cancellation: Config.TrialTimeout quarantines trials
//     that overrun a wall-clock budget with a deterministic deadline
//     error; RunTrialsContext/StreamTrialsContext thread a
//     context.Context through the worker pool, so cancellation drains
//     in-flight trials and delivers a contiguous, flushed prefix.
//     cmd/sweeprun translates SIGINT/SIGTERM into that cancellation and
//     exits with a distinct documented code after printing the resume
//     command (a second signal kills immediately);
//   - resumable shards: sink.ReadRecordsPartial salvages the valid
//     record prefix of a torn shard file (a crash mid-write leaves at
//     most one broken final line). "sweeprun run -resume" verifies the
//     salvaged prefix against the invocation's derivation — experiment
//     membership, global indices, seed schedule, fingerprints — then
//     truncates the tail and appends only the trials not yet durable.
//     Because delivery is strictly ordered and seeds depend only on
//     global indices (Config.StreamTrialsFrom), the finished file is
//     byte-identical to an uninterrupted run's; a mismatched resume is
//     rejected with the file untouched. Transient sink write errors
//     retry under bounded exponential backoff (sink.Retry) before
//     aborting — and an abort still leaves a valid resumable prefix;
//   - fault injection: internal/chaos wraps any sink or executor with
//     seeded, deterministic faults — panic at trial i, error every k-th
//     write, torn write at a byte offset, stall past a deadline — so the
//     recovery paths above are themselves tested under the race
//     detector, and CI kills a live shard mid-sweep, resumes it, and
//     diffs the merge against an uninterrupted run.
//
// # Observability
//
// The pipeline is instrumented end to end by internal/telemetry, an
// allocation-free metrics core (atomic counters, gauges, high-water marks,
// and log2 histograms behind a named snapshot registry). Telemetry is off
// by default and costs one atomic load per instrumented site when disabled;
// telemetry.Enable turns it on process-wide, and every observation is an
// atomic op — the engine's zero-steady-state-allocation contract and the
// sink's byte-identical streams hold with counters live (both are asserted
// under test). Well-known metrics cover the engine (engine.runs,
// engine.rounds{,.parallel,.sequential}, engine.pool.dispatches/shards,
// engine.calibration.*), the sweep runner (sim.trials, sim.trial.wall_ns
// and sim.trial.rounds_to_decide histograms, sim.quarantine.
// panic/deadline/other, sim.reorder.highwater), and the record stream
// (sink.records, sink.bytes, sink.flush_ns, sink.retry.attempts,
// sink.resume.salvaged_records/torn_tails/discarded_bytes).
//
// cmd/sweeprun exposes three consumers of the same registry:
//
//   - live progress: "run -progress" renders a deterministic ticker to
//     stderr (segment, trials done/planned, trials/s, ETA, quarantine
//     count); -quiet silences informational output;
//   - run reports: every "run -o FILE" writes FILE.report.json — status,
//     per-segment trial accounting (planned/salvaged/executed/quarantined
//     by cause), wall-time breakdown, histograms, calibration, and the
//     seed-schedule version. "-report none" disables, "-report PATH"
//     redirects; "sweeprun report FILE" summarizes and validates one
//     (telemetry.ParseReport is the schema contract);
//   - a metrics endpoint: "-telemetry-addr HOST:PORT" serves /metrics
//     (the registry as deterministic JSON) and net/http/pprof under
//     /debug/pprof/ for profiling live sweeps. Host-less addresses bind
//     loopback — the endpoint exposes process internals, so exposure
//     beyond localhost is an explicit opt-in.
//
// Telemetry is strictly read-only with respect to results: enabling it,
// or running with the endpoint live, leaves shard bytes identical at any
// worker count.
//
// Counters are aggregate truth; internal/events is the narrative truth
// beside them: a structured event journal of hierarchical spans (job →
// segment → trial-batch, emitted at per-trial granularity and coarser —
// never per-round) and point events (job.admit/dedupe/evict/retry/
// checkpoint/cancel/quarantine, drain, salvage, torn_tail, quarantine
// with cause=panic|deadline|other, sink.flush, sink.retry), each carrying
// a monotonic sequence number and an injectable-clock timestamp. The
// journal is a bounded lock-free ring with fan-out subscriptions — a
// blocking lossless mode feeds the durable per-attempt export
// (<out>.events.jsonl, whose event counts reconcile exactly with the run
// report's counters), and a non-blocking mode serves live watchers under
// an explicit slow-consumer drop policy (drops surface in events.dropped
// and per-subscription). Like telemetry it is an observer: journaling on,
// exported, and subscribed leaves shard bytes identical at any worker
// count, and the engine/sink allocation audits hold with a subscriber
// attached.
//
// The daemon turns that journal into a query surface. sweepd serves, per
// job: GET /jobs/{id}/events — one SSE connection streaming the journal
// and the per-trial records as they become durable (a finished job
// replays its persisted journal; "sweeprun tail ADDR JOB" is the terminal
// client); GET /jobs/{id}/results — experiment tables and trial
// statistics rendered from the durable records through internal/replay,
// no re-simulation; GET /jobs/{id}/flagged — quarantined/undecided/
// violation trials selected by the shared replay.Selector syntax; and
// /metrics?name=PREFIX — one registry subtree, histogram buckets labeled
// with human-readable bounds ("sweeprun help events" summarizes the
// surfaces).
//
// # Job supervision
//
// The batch CLI has a daemon face: cmd/sweepd accepts sweep-shard jobs
// over a loopback HTTP API (sharing the telemetry listener) and executes
// them through internal/jobs — the same segment-plan/salvage/stream code
// path "sweeprun run" uses, extracted so both faces cannot drift. A
// supervisor fronts a bounded, fingerprint-deduplicating admission queue
// before a single execution slot: transient sink failures retry under a
// backoff window (optionally with deterministic per-job jitter), a
// per-job attempt budget quarantines repeat offenders, panics in the
// execution path quarantine the job without killing the daemon, and
// SIGTERM drains — the running job checkpoints to a durable resumable
// prefix and the queue persists to an atomically-written manifest that
// the next start re-admits. Because every attempt resumes through the
// salvage path, a finished job's shard file is byte-identical to an
// uninterrupted command-line run, even across a SIGKILL and restart (the
// CI daemon soak proves this with cmp). Job status documents carry the
// run report verbatim; queue and lifecycle behavior is observable at
// /metrics (jobs.*).
//
// # Quick start
//
//	report, err := adhocconsensus.Config{
//	    Algorithm: adhocconsensus.AlgorithmBitByBit,
//	    Values:    []adhocconsensus.Value{3, 7, 7, 1},
//	    Domain:    16,
//	}.Run()
//	if err != nil { ... }
//	fmt.Println("agreed on", report.Agreed, "in", report.Rounds, "rounds")
//
// See examples/ for realistic scenarios (sensor calibration, clusterhead
// election, pre-aggregation voting) and cmd/benchtab for the experiment
// harness that regenerates every table of EXPERIMENTS.md.
package adhocconsensus
