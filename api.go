package adhocconsensus

import (
	"context"
	"fmt"
	"strings"
	"time"

	"adhocconsensus/internal/detector"
	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/model"
	"adhocconsensus/internal/replay"
	"adhocconsensus/internal/sim"
	"adhocconsensus/internal/sink"
	"adhocconsensus/internal/stats"
)

// Value is a consensus input/decision value: an index into the value domain
// {0, ..., Domain-1}.
type Value = model.Value

// ProcessID identifies a process (1-based in reports).
type ProcessID = model.ProcessID

// Algorithm selects one of the paper's consensus algorithms.
type Algorithm int

// The four algorithms of Section 7.
const (
	// AlgorithmPropose is Algorithm 1: alternating propose/veto rounds,
	// constant-time after stabilization; requires a majority-complete
	// eventually-accurate detector (maj-◇AC) and eventual collision
	// freedom.
	AlgorithmPropose Algorithm = iota + 1
	// AlgorithmBitByBit is Algorithm 2: one round per value bit; works
	// with the weakest useful detector (0-◇AC) under eventual collision
	// freedom; O(lg|V|) rounds after stabilization.
	AlgorithmBitByBit
	// AlgorithmTreeWalk is Algorithm 3: lockstep walk of a BST over the
	// value domain; requires an always-accurate zero-complete detector
	// (0-AC) but NO message delivery guarantee and no contention manager.
	AlgorithmTreeWalk
	// AlgorithmLeaderRelay is the §7.3 non-anonymous algorithm: elect a
	// leader over the (small) identifier space by Algorithm 2, then relay
	// the leader's value; O(min{lg|V|, lg|I|}) rounds.
	AlgorithmLeaderRelay
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmPropose:
		return "propose-veto (Alg 1)"
	case AlgorithmBitByBit:
		return "bit-by-bit (Alg 2)"
	case AlgorithmTreeWalk:
		return "tree-walk (Alg 3)"
	case AlgorithmLeaderRelay:
		return "leader-relay (§7.3)"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// DetectorClass re-exports the collision detector classes of Figure 1.
type DetectorClass = detector.Class

// The detector classes (completeness × accuracy). See Figure 1 of the
// paper; DetectorAuto picks the weakest class the chosen algorithm
// tolerates.
var (
	DetectorAC      = detector.AC
	DetectorMajAC   = detector.MajAC
	DetectorHalfAC  = detector.HalfAC
	DetectorZeroAC  = detector.ZeroAC
	DetectorOAC     = detector.OAC
	DetectorMajOAC  = detector.MajOAC
	DetectorHalfOAC = detector.HalfOAC
	DetectorZeroOAC = detector.ZeroOAC
)

// ContentionMode selects the contention manager.
type ContentionMode int

// Contention manager choices.
const (
	// ContentionAuto picks what the algorithm expects: a wake-up service
	// for Algorithms 1/2 and leader-relay, none for the tree walk.
	ContentionAuto ContentionMode = iota
	// ContentionWakeUp stabilizes to one (rotating) active process at
	// round Stable.
	ContentionWakeUp
	// ContentionLeader stabilizes to one fixed active process at Stable.
	ContentionLeader
	// ContentionBackoff runs the binary-exponential-backoff substrate; the
	// stabilization round is then probabilistic.
	ContentionBackoff
	// ContentionNone advises everyone active every round.
	ContentionNone
)

// LossMode selects the channel's loss behavior.
type LossMode int

// Channel loss models.
const (
	// LossNone delivers everything.
	LossNone LossMode = iota
	// LossProbabilistic drops each delivery independently with probability
	// P (the 20–50% regimes of the empirical studies in §1.1).
	LossProbabilistic
	// LossCapture models the capture effect: in a collision each receiver
	// locks onto at most one transmission.
	LossCapture
	// LossDrop loses every cross-process message forever (the no-ECF
	// environment of Algorithm 3).
	LossDrop
)

// Seed-schedule versions: how a trial's seed expands into the per-round
// random draws of the loss adversaries (and only those — detector noise and
// backoff are unaffected). See the package documentation's "Seed schedules"
// section.
const (
	// SeedScheduleV1 is the historical sequential schedule: one generator
	// per adversary, advanced draw by draw in receiver-major order. The
	// default; byte-identical to every recording made before schedules were
	// versioned.
	SeedScheduleV1 = 1
	// SeedScheduleV2 is the counter-based schedule: each (trial seed, round,
	// receiver) keys an independent splitmix64 stream, so loss rows can be
	// drawn in any order — including in parallel across delivery workers —
	// with byte-identical results. Draws differ from v1, so v1 and v2
	// recordings of the same seed are distinct experiments.
	SeedScheduleV2 = 2
)

// DeliveryWorkersAuto, assigned to Config.DeliveryWorkers, sizes the
// delivery worker pool from a one-time startup calibration of this host
// (shard-barrier cost vs per-row fill cost) instead of a fixed constant.
const DeliveryWorkersAuto = engine.DeliveryWorkersAuto

// Crash schedules a permanent crash failure.
type Crash struct {
	Process   ProcessID
	Round     int
	AfterSend bool // crash after broadcasting in Round rather than before
}

// Config assembles a consensus run. Zero values select sensible defaults:
// an honest detector of the weakest class the algorithm tolerates, a
// wake-up service stable from round 1 (when the algorithm uses one), a
// lossless channel with ECF from round 1, and 100k max rounds.
type Config struct {
	// Algorithm picks the protocol. Required.
	Algorithm Algorithm
	// Values holds each process's initial value; len(Values) is the number
	// of processes. Required, non-empty.
	Values []Value
	// Domain is |V|. Defaults to max(Values)+1.
	Domain uint64
	// IDs are unique identifiers for AlgorithmLeaderRelay (defaults to
	// distinct indices drawn from IDSpace).
	IDs []Value
	// IDSpace is |I| for AlgorithmLeaderRelay. Defaults to 2^48 (MAC-like).
	IDSpace uint64

	// DetectorClass overrides the detector class (zero value = auto).
	DetectorClass DetectorClass
	// DetectorRace is the first accurate round for eventually-accurate
	// classes. Defaults to 1.
	DetectorRace int
	// FalsePositiveRate makes the detector report spurious collisions with
	// this probability whenever its class allows (before DetectorRace).
	FalsePositiveRate float64

	// Contention selects the manager; Stable is its stabilization round
	// (default 1).
	Contention ContentionMode
	Stable     int

	// Loss selects the channel model; LossP parameterizes it. ECFRound is
	// the round from which a lone broadcaster is always heard (default 1;
	// set 0 to disable ECF — required honest for AlgorithmTreeWalk only).
	Loss     LossMode
	LossP    float64
	ECFRound int

	// Crashes schedules failures.
	Crashes []Crash

	// Seed drives every random component (loss, noise, backoff).
	Seed int64
	// SeedSchedule selects how Seed expands into the loss adversary's
	// per-round draws: SeedScheduleV1 (the default; 0 means v1) or
	// SeedScheduleV2's order-free counter streams. The version is part of a
	// recording's identity — fingerprints differ between schedules and
	// mixed-schedule shard sets are rejected at merge.
	SeedSchedule int
	// MaxRounds bounds the run (default 100000).
	MaxRounds int
	// TrialTimeout, when positive, bounds each trial of RunTrials and
	// StreamTrials by wall-clock time: a watchdog stops a runaway trial at
	// its next round boundary and the trial is reported with a
	// deterministic deadline error instead of blocking the run forever.
	// Single runs via Run are not bounded.
	TrialTimeout time.Duration
	// ResultSink, when set, receives the digested outcome of every trial of
	// RunTrials/StreamTrials as it completes, in trial order — stream
	// per-trial data out (JSONL, another machine, live dashboards) instead
	// of keeping only the aggregate. Single runs via Run do not use it.
	ResultSink ResultSink
	// UseGoroutines runs the goroutine-per-process runtime instead of the
	// deterministic in-loop engine. Both produce identical executions.
	UseGoroutines bool
	// DeliveryWorkers shards each round's delivery inner loop across up to
	// this many goroutines — intra-run parallelism for large networks,
	// complementing the cross-trial parallelism of RunTrials. 0 or 1 runs
	// sequentially; DeliveryWorkersAuto sizes the pool from a startup
	// calibration of this host. Results are byte-identical at any worker
	// count: the engine auto-falls back to the sequential loop for small
	// systems (below a calibrated threshold) and for order-dependent
	// components (a detector with FalsePositiveRate noise draws its false
	// positives sequentially). Under SeedScheduleV2 the adversary's plan
	// itself is also filled by the same pool.
	DeliveryWorkers int
	// TraceDecisionsOnly skips recording per-round views: the Report's
	// Execution carries decisions but no Rounds, and the run is several
	// times faster and nearly allocation-free. Decisions, rounds, and the
	// agreed value are identical to a full-trace run. Leave false when the
	// execution itself will be inspected or validated.
	TraceDecisionsOnly bool
}

// Report is the outcome of a consensus run.
type Report struct {
	// Agreed is the decided value (valid when Decided is true).
	Agreed Value
	// Decided reports whether all correct processes decided.
	Decided bool
	// Rounds is the number of rounds executed.
	Rounds int
	// Decisions maps each decided process to its value and decision round.
	Decisions map[ProcessID]Decision
	// Execution exposes the recorded execution for inspection. Under
	// Config.TraceDecisionsOnly it has no per-round views.
	Execution *model.Execution
}

// Decision re-exports the per-process decision record.
type Decision = model.Decision

// Run executes the configured system.
func (c Config) Run() (*Report, error) {
	scenario, err := c.toScenario()
	if err != nil {
		return nil, err
	}
	res, err := sim.Run(scenario)
	if err != nil {
		return nil, apiErr(err)
	}
	report := &Report{
		Decided:   res.AllDecided,
		Rounds:    res.Rounds,
		Decisions: res.Decisions,
		Execution: res.Execution,
	}
	if vals := res.Execution.DecidedValues(); len(vals) == 1 {
		report.Agreed = vals[0]
	} else if len(vals) > 1 {
		return nil, fmt.Errorf("adhocconsensus: agreement violated (%v) — the environment is outside the algorithm's requirements", vals)
	}
	return report, nil
}

// toScenario translates the public configuration into the internal
// declarative scenario the sweep engine executes. The translation is
// one-to-one: every default and seed offset matches the pre-sim builder,
// so a Config reproduces its historical executions bit for bit.
func (c Config) toScenario() (sim.Scenario, error) {
	var alg sim.Algorithm
	switch c.Algorithm {
	case AlgorithmPropose:
		alg = sim.AlgPropose
	case AlgorithmBitByBit:
		alg = sim.AlgBitByBit
	case AlgorithmTreeWalk:
		alg = sim.AlgTreeWalk
	case AlgorithmLeaderRelay:
		alg = sim.AlgLeaderRelay
	default:
		return sim.Scenario{}, fmt.Errorf("adhocconsensus: unknown algorithm %v", c.Algorithm)
	}

	var cmMode sim.CMMode
	switch c.Contention {
	case ContentionAuto:
		cmMode = sim.CMAuto
	case ContentionWakeUp:
		cmMode = sim.CMWakeUp
	case ContentionLeader:
		cmMode = sim.CMLeader
	case ContentionBackoff:
		cmMode = sim.CMBackoff
	case ContentionNone:
		cmMode = sim.CMNone
	default:
		return sim.Scenario{}, fmt.Errorf("adhocconsensus: unknown contention mode %d", c.Contention)
	}

	var lossMode sim.LossMode
	switch c.Loss {
	case LossNone:
		lossMode = sim.LossNone
	case LossProbabilistic:
		lossMode = sim.LossProbabilistic
	case LossCapture:
		lossMode = sim.LossCapture
	case LossDrop:
		lossMode = sim.LossDrop
	default:
		return sim.Scenario{}, fmt.Errorf("adhocconsensus: unknown loss mode %d", c.Loss)
	}

	crashes := make(model.Schedule, len(c.Crashes))
	for _, cr := range c.Crashes {
		when := model.CrashBeforeSend
		if cr.AfterSend {
			when = model.CrashAfterSend
		}
		crashes[cr.Process] = model.Crash{Round: cr.Round, Time: when}
	}

	trace := engine.TraceFull
	if c.TraceDecisionsOnly {
		trace = engine.TraceDecisionsOnly
	}
	return sim.Scenario{
		Algorithm:         alg,
		Values:            c.Values,
		Domain:            c.Domain,
		IDs:               c.IDs,
		IDSpace:           c.IDSpace,
		Detector:          c.DetectorClass,
		Race:              c.DetectorRace,
		FalsePositiveRate: c.FalsePositiveRate,
		CM:                cmMode,
		Stable:            c.Stable,
		Loss:              lossMode,
		LossP:             c.LossP,
		ECFRound:          c.ECFRound,
		Crashes:           crashes,
		MaxRounds:         c.MaxRounds,
		Trace:             trace,
		DeliveryWorkers:   c.DeliveryWorkers,
		UseGoroutines:     c.UseGoroutines,
		Seed:              c.Seed,
		SeedSchedule:      c.SeedSchedule,
	}, nil
}

// apiErr rewrites internal sim errors into this package's public prefix,
// preserving the error contract Config.Run has always had. The original
// error stays on the chain, so errors.Is/As classification (context
// cancellation, deadline quarantines, sink failures) survives the rewrite.
func apiErr(err error) error {
	if err == nil {
		return nil
	}
	if msg, ok := strings.CutPrefix(err.Error(), "sim: "); ok {
		return &wrappedErr{msg: "adhocconsensus: " + msg, err: err}
	}
	return err
}

// wrappedErr re-prefixes a message without truncating the error chain.
type wrappedErr struct {
	msg string
	err error
}

func (e *wrappedErr) Error() string { return e.msg }

func (e *wrappedErr) Unwrap() error { return e.err }

// TrialResult is the digested outcome of one trial of a multi-trial run:
// everything RunTrials aggregates, per trial, plus the provenance needed to
// re-run the trial standalone — its derived seed (pass it as Config.Seed to
// a single Run for a byte-identical execution) and the configuration
// fingerprint that names the environment it ran in.
type TrialResult struct {
	// Trial is the trial's index in the full run (global across shards).
	Trial int
	// Seed is the trial's derived seed: splitmix64(Config.Seed, 0, Trial).
	Seed int64
	// Fingerprint identifies the configuration — every parameter plus the
	// base Config.Seed, but not the per-trial seed — so all trials of one
	// Config share it, and shard files from different configurations or
	// base seeds cannot be merged.
	Fingerprint string

	// Rounds is the number of rounds executed.
	Rounds int
	// Decided reports whether every correct process decided.
	Decided bool
	// Decisions is the number of processes that decided.
	Decisions int
	// DecidedValues is the sorted set of distinct decided values (one entry
	// means agreement; more than one, an agreement violation).
	DecidedValues []Value
	// LastDecisionRound is the latest round at which any process decided.
	LastDecisionRound int

	// AgreementOK, ValidityOK (strong validity), and TerminationOK report
	// the consensus property checks for this trial; TerminationOK exempts
	// crashed processes.
	AgreementOK   bool
	ValidityOK    bool
	TerminationOK bool

	// Err is the trial's quarantine record: non-empty when the trial
	// panicked (the message, without the stack), overran
	// Config.TrialTimeout, or failed to execute. All digest fields above
	// are zero then. The run itself continues past errored trials; the
	// first per-trial error is also returned after the sweep completes.
	Err string
}

// ResultSink consumes per-trial results as a multi-trial run produces
// them. Results arrive strictly in ascending trial order and Consume is
// never called concurrently, so implementations need no locking. A Consume
// error aborts the run.
type ResultSink interface {
	Consume(r TrialResult) error
}

// TrialStats aggregates a multi-trial run of one configuration.
type TrialStats struct {
	// Trials is the number of executed trials.
	Trials int
	// Decided counts trials in which every correct process decided.
	Decided int
	// Agreements counts trials by their (single) agreed value.
	Agreements map[Value]int
	// AgreementViolations counts trials that decided more than one value
	// (possible only when the environment is outside the algorithm's
	// requirements).
	AgreementViolations int
	// MinRounds/MeanRounds/MedianRounds/P95Rounds/MaxRounds summarize the
	// executed round counts across trials.
	MinRounds    int
	MaxRounds    int
	MeanRounds   float64
	MedianRounds float64
	P95Rounds    float64
}

// RunTrials executes the configuration `trials` times on a parallel worker
// pool (workers <= 0 selects GOMAXPROCS) and aggregates the outcomes. Each
// trial runs with its own deterministically derived seed — a splitmix64 mix
// of Config.Seed and the trial index — so results are reproducible and
// byte-identical for any worker count. Per-round traces are not recorded;
// use Run for a single fully traced execution. When Config.ResultSink is
// set, every per-trial result additionally streams into it, in order.
func (c Config) RunTrials(trials, workers int) (*TrialStats, error) {
	return c.RunTrialsContext(context.Background(), trials, workers)
}

// RunTrialsContext is RunTrials with cooperative cancellation: once ctx is
// done, no new trials start, in-flight trials finish, and the error wraps
// ctx's error (classify with errors.Is). Trials already completed are not
// aggregated — a canceled aggregate would be statistics over an arbitrary
// prefix.
func (c Config) RunTrialsContext(ctx context.Context, trials, workers int) (*TrialStats, error) {
	if trials < 1 {
		trials = 1
	}
	collected := make([]TrialResult, 0, trials)
	// StreamTrials tees Config.ResultSink in before the explicit sink.
	if err := c.StreamTrialsContext(ctx, trials, workers, 0, 1, collectSink{&collected}); err != nil {
		return nil, err
	}
	return TrialStatsOf(collected), nil
}

// collectSink gathers results in memory.
type collectSink struct {
	results *[]TrialResult
}

func (s collectSink) Consume(r TrialResult) error {
	*s.results = append(*s.results, r)
	return nil
}

// StreamTrials executes the shard-of-shards subset of a `trials`-trial run
// (every trial index congruent to shard mod shards; pass 0, 1 for the whole
// run) on a parallel worker pool, streaming each trial's digested result
// into the sink in ascending trial order. Trial seeds depend only on
// Config.Seed and the GLOBAL trial index, so the union of the k shard
// streams is byte-identical to the single-machine run's stream at any
// worker or shard count: aggregate the merged results with TrialStatsOf and
// the statistics match RunTrials exactly. When Config.ResultSink is also
// set, each result is delivered to it first, then to out. cmd/sweeprun
// drives this for multi-machine sweeps.
//
// A trial that panics or overruns Config.TrialTimeout does not stop the
// stream: it is delivered as a quarantine result (TrialResult.Err set,
// digest fields zero) in its ordered slot, and the first such per-trial
// error is returned after every trial has run.
func (c Config) StreamTrials(trials, workers, shard, shards int, out ResultSink) error {
	return c.StreamTrialsContext(context.Background(), trials, workers, shard, shards, out)
}

// StreamTrialsContext is StreamTrials with cooperative cancellation: once
// ctx is done the sweep stops claiming trials, drains the ones in flight,
// delivers the contiguous completed prefix to the sink, and returns an
// error wrapping ctx's error — so the delivered stream remains a valid
// resumable prefix of the full run.
func (c Config) StreamTrialsContext(ctx context.Context, trials, workers, shard, shards int, out ResultSink) error {
	return c.StreamTrialsFrom(ctx, trials, workers, shard, shards, 0, out)
}

// StreamTrialsFrom is StreamTrialsContext resuming at the shard's skip-th
// trial: the first skip trials of the shard — ascending global indices
// congruent to shard mod shards — are assumed durable (typically salvaged
// from a partially written shard file) and are not re-executed. Trial seeds
// depend only on the global index, so the results streamed here, appended
// after the durable prefix, reproduce the uninterrupted shard stream byte
// for byte. skip at or past the shard's length streams nothing and returns
// nil.
func (c Config) StreamTrialsFrom(ctx context.Context, trials, workers, shard, shards, skip int, out ResultSink) error {
	if out == nil {
		return fmt.Errorf("adhocconsensus: StreamTrials needs a sink")
	}
	if c.ResultSink != nil {
		out = teeSink{first: c.ResultSink, then: out}
	}
	if trials < 1 {
		trials = 1
	}
	if shards < 1 || shard < 0 || shard >= shards {
		return fmt.Errorf("adhocconsensus: shard %d/%d out of range", shard, shards)
	}
	if skip < 0 {
		skip = 0
	}
	c.TraceDecisionsOnly = true
	base, err := c.toScenario()
	if err != nil {
		return err
	}
	// Validate once up front: configuration errors surface here with the
	// public prefix instead of wrapped in per-trial sweep context.
	if _, err := base.Materialize(); err != nil {
		return apiErr(err)
	}
	baseParams := sink.ParamsOf(base)
	baseParams.SweepSeed = c.Seed // part of a sweep's identity, unlike trial seeds
	fingerprint := baseParams.Fingerprint()
	start := shard + skip*shards
	var shardTrials []sim.Trial
	if start < trials {
		shardTrials = make([]sim.Trial, 0, (trials-start+shards-1)/shards)
	}
	for t := start; t < trials; t += shards {
		s := base
		s.Seed = sim.TrialSeed(c.Seed, 0, t)
		shardTrials = append(shardTrials, sim.Trial{Index: t, Scenario: s})
	}
	runner := sim.Runner{Workers: workers, TrialTimeout: c.TrialTimeout}
	err = runner.SweepTrialsToCtx(ctx, shardTrials, trialAdapter{sink: out, fingerprint: fingerprint})
	return apiErr(err)
}

// teeSink delivers every result to two sinks in order.
type teeSink struct {
	first, then ResultSink
}

func (s teeSink) Consume(r TrialResult) error {
	if err := s.first.Consume(r); err != nil {
		return err
	}
	return s.then.Consume(r)
}

// trialAdapter converts the internal per-trial digest into the public
// TrialResult on its way to the user sink.
type trialAdapter struct {
	sink        ResultSink
	fingerprint string
}

func (a trialAdapter) Consume(r sim.Result) error {
	if r.Err != nil {
		// Quarantine record: identity plus the error, zero digest. The
		// runner additionally surfaces the first per-trial error after the
		// sweep.
		return a.sink.Consume(TrialResult{
			Trial:       r.Index,
			Seed:        r.Seed,
			Fingerprint: a.fingerprint,
			Err:         r.Err.Error(),
		})
	}
	return a.sink.Consume(TrialResult{
		Trial:             r.Index,
		Seed:              r.Seed,
		Fingerprint:       a.fingerprint,
		Rounds:            r.Rounds,
		Decided:           r.AllDecided,
		Decisions:         r.Decisions,
		DecidedValues:     r.DecidedValues,
		LastDecisionRound: r.LastDecisionRound,
		AgreementOK:       r.AgreementOK,
		ValidityOK:        r.ValidityOK,
		TerminationOK:     r.TerminationOK,
	})
}

// ReplayReport is the outcome of forensically re-executing one recorded
// trial: a fresh full-trace run of the trial's derived seed, audited
// against the recorded digest and the formal model's execution legality
// constraints.
type ReplayReport struct {
	// Trial and Seed identify the re-executed trial.
	Trial int
	Seed  int64
	// Reasons says why ReplayFlagged selected the trial (empty for a direct
	// Replay call).
	Reasons []string
	// DigestOK reports that the fresh run reproduced the recorded outcome —
	// rounds, decisions, decided values, property verdicts — field for
	// field; Mismatch names the first divergence otherwise. A mismatch means
	// the record and this build disagree about the same seed: version skew,
	// a corrupted record, or nondeterminism, all worth alarm.
	DigestOK bool
	Mismatch string
	// TraceValid reports that the re-executed trace satisfies the execution
	// constraints of the formal model (integrity, self-delivery, fail-state
	// permanence); TraceError carries the violation otherwise.
	TraceValid bool
	TraceError string
	// Report is the fresh full-trace run, for further inspection. Call
	// Report.Execution.Release when done with its views to recycle the
	// trace arena.
	Report *Report
}

// OK reports a clean audit: digest reproduced and trace legal.
func (r *ReplayReport) OK() bool { return r.DigestOK && r.TraceValid }

// BundleText renders the report's forensic trace bundle — the provenance
// header (trial, seed, flag reasons, digest and legality verdicts) followed
// by the full per-round execution table — in exactly the format "sweeprun
// verify -bundle" writes for experiment records. Empty once the execution
// has been released.
func (r *ReplayReport) BundleText() string {
	if r.Report == nil || r.Report.Execution == nil || !r.Report.Execution.HasViews() {
		return ""
	}
	return replay.BundleText(&replay.Verification{
		Index:      r.Trial,
		Seed:       r.Seed,
		Reasons:    r.Reasons,
		DigestOK:   r.DigestOK,
		Mismatch:   r.Mismatch,
		TraceValid: r.TraceValid,
		TraceError: r.TraceError,
	}, r.Report.Execution)
}

// Replay forensically re-executes one recorded trial of this configuration:
// the trial's derived seed is re-run at full trace fidelity (regardless of
// Config.TraceDecisionsOnly) and the fresh execution is audited against the
// recorded digest and the model's legality constraints. The configuration
// must be the one that produced the trial — a fingerprint mismatch is
// rejected before anything runs.
func (c Config) Replay(r TrialResult) (*ReplayReport, error) {
	return c.replay(r, nil)
}

// ReplaySelector chooses which trials of a recorded multi-trial run
// ReplayFlagged audits.
type ReplaySelector struct {
	// Undecided selects trials in which not every correct process decided.
	Undecided bool
	// Violations selects trials that broke agreement or strong validity.
	Violations bool
	// TopSlowest selects the k trials with the highest round counts (ties
	// broken by trial index).
	TopSlowest int
}

// ReplayFlagged audits a recorded multi-trial run: it selects the anomalous
// trials (undecided, safety violations, round-count outliers) and replays
// each at full trace fidelity, returning one report per flagged trial in
// trial order. Records with mismatched fingerprints or seeds are rejected.
// The selection semantics are exactly internal/replay's FlagRecords — the
// same rules "sweeprun verify" applies to shard files.
func (c Config) ReplayFlagged(results []TrialResult, sel ReplaySelector) ([]*ReplayReport, error) {
	recs := make([]sink.Record, len(results))
	byTrial := make(map[int]TrialResult, len(results))
	for i, r := range results {
		recs[i] = sink.Record{
			Index:      r.Trial,
			Rounds:     r.Rounds,
			AllDecided: r.Decided,
			// FlagRecords reads only the digest verdict fields.
			AgreementOK: r.AgreementOK,
			ValidityOK:  r.ValidityOK,
		}
		byTrial[r.Trial] = r
	}
	var out []*ReplayReport
	for _, f := range replay.FlagRecords(recs, replay.Selector{
		Undecided:  sel.Undecided,
		Violations: sel.Violations,
		TopSlowest: sel.TopSlowest,
	}) {
		rep, err := c.replay(byTrial[f.Rec.Index], f.Reasons)
		if err != nil {
			return out, err
		}
		out = append(out, rep)
	}
	return out, nil
}

// replay is the shared audit body of Replay and ReplayFlagged.
func (c Config) replay(r TrialResult, reasons []string) (*ReplayReport, error) {
	// The recorded stream ran decisions-only (multi-trial runs never record
	// views); fingerprints must be derived the same way StreamTrials derived
	// them, or the provenance check would reject every record.
	c.TraceDecisionsOnly = true
	base, err := c.toScenario()
	if err != nil {
		return nil, err
	}
	baseParams := sink.ParamsOf(base)
	baseParams.SweepSeed = c.Seed
	if fp := baseParams.Fingerprint(); r.Fingerprint != "" && r.Fingerprint != fp {
		return nil, fmt.Errorf("adhocconsensus: trial %d carries fingerprint %s, this configuration derives %s — recorded under a different configuration or version",
			r.Trial, r.Fingerprint, fp)
	}
	// Fingerprints exclude per-trial seeds; check the recorded seed against
	// this configuration's derivation directly (exactly as the grid replay
	// paths do), so a record regenerated at a foreign seed cannot pass off
	// its own execution as this sweep's.
	if want := sim.TrialSeed(c.Seed, 0, r.Trial); r.Seed != want {
		return nil, fmt.Errorf("adhocconsensus: trial %d ran with seed %d, this configuration derives %d — recorded under a different configuration or version",
			r.Trial, r.Seed, want)
	}
	sc := base
	sc.Seed = r.Seed
	recorded := sim.Result{
		Index:             r.Trial,
		Seed:              r.Seed,
		Rounds:            r.Rounds,
		AllDecided:        r.Decided,
		Decisions:         r.Decisions,
		DecidedValues:     r.DecidedValues,
		LastDecisionRound: r.LastDecisionRound,
		AgreementOK:       r.AgreementOK,
		ValidityOK:        r.ValidityOK,
		TerminationOK:     r.TerminationOK,
	}
	v, res := replay.ReExecuteScenarioKeep(recorded, sc, reasons, false)
	rep := &ReplayReport{
		Trial:      v.Index,
		Seed:       v.Seed,
		Reasons:    reasons,
		DigestOK:   v.DigestOK,
		Mismatch:   v.Mismatch,
		TraceValid: v.TraceValid,
		TraceError: v.TraceError,
	}
	if res == nil {
		return nil, fmt.Errorf("adhocconsensus: trial %d re-execution failed: %s", r.Trial, v.TraceError)
	}
	rep.Report = &Report{
		Decided:   res.AllDecided,
		Rounds:    res.Rounds,
		Decisions: res.Decisions,
		Execution: res.Execution,
	}
	if vals := res.Execution.DecidedValues(); len(vals) == 1 {
		rep.Report.Agreed = vals[0]
	}
	return rep, nil
}

// TrialStatsOf aggregates per-trial results — from RunTrials' own stream or
// merged back from sharded files — into the statistics RunTrials reports.
// The aggregation is order-independent except for Trials counting, so stats
// over a merged full set are byte-identical to the in-process run's.
func TrialStatsOf(results []TrialResult) *TrialStats {
	st := &TrialStats{Trials: len(results), Agreements: make(map[Value]int)}
	rounds := stats.NewCollector(len(results))
	for i, r := range results {
		rounds.Set(i, float64(r.Rounds))
		if r.Decided {
			st.Decided++
		}
		switch {
		case len(r.DecidedValues) == 1:
			st.Agreements[r.DecidedValues[0]]++
		case len(r.DecidedValues) > 1:
			st.AgreementViolations++
		}
	}
	sum := rounds.Summary()
	st.MinRounds = int(sum.Min)
	st.MaxRounds = int(sum.Max)
	st.MeanRounds = sum.Mean
	st.MedianRounds = sum.Median
	st.P95Rounds = sum.P95
	return st
}
