package adhocconsensus

import (
	"fmt"

	"adhocconsensus/internal/backoff"
	"adhocconsensus/internal/cm"
	"adhocconsensus/internal/core"
	"adhocconsensus/internal/detector"
	"adhocconsensus/internal/engine"
	"adhocconsensus/internal/loss"
	"adhocconsensus/internal/model"
	"adhocconsensus/internal/runtime"
	"adhocconsensus/internal/valueset"
)

// Value is a consensus input/decision value: an index into the value domain
// {0, ..., Domain-1}.
type Value = model.Value

// ProcessID identifies a process (1-based in reports).
type ProcessID = model.ProcessID

// Algorithm selects one of the paper's consensus algorithms.
type Algorithm int

// The four algorithms of Section 7.
const (
	// AlgorithmPropose is Algorithm 1: alternating propose/veto rounds,
	// constant-time after stabilization; requires a majority-complete
	// eventually-accurate detector (maj-◇AC) and eventual collision
	// freedom.
	AlgorithmPropose Algorithm = iota + 1
	// AlgorithmBitByBit is Algorithm 2: one round per value bit; works
	// with the weakest useful detector (0-◇AC) under eventual collision
	// freedom; O(lg|V|) rounds after stabilization.
	AlgorithmBitByBit
	// AlgorithmTreeWalk is Algorithm 3: lockstep walk of a BST over the
	// value domain; requires an always-accurate zero-complete detector
	// (0-AC) but NO message delivery guarantee and no contention manager.
	AlgorithmTreeWalk
	// AlgorithmLeaderRelay is the §7.3 non-anonymous algorithm: elect a
	// leader over the (small) identifier space by Algorithm 2, then relay
	// the leader's value; O(min{lg|V|, lg|I|}) rounds.
	AlgorithmLeaderRelay
)

// String names the algorithm.
func (a Algorithm) String() string {
	switch a {
	case AlgorithmPropose:
		return "propose-veto (Alg 1)"
	case AlgorithmBitByBit:
		return "bit-by-bit (Alg 2)"
	case AlgorithmTreeWalk:
		return "tree-walk (Alg 3)"
	case AlgorithmLeaderRelay:
		return "leader-relay (§7.3)"
	default:
		return fmt.Sprintf("algorithm(%d)", int(a))
	}
}

// DetectorClass re-exports the collision detector classes of Figure 1.
type DetectorClass = detector.Class

// The detector classes (completeness × accuracy). See Figure 1 of the
// paper; DetectorAuto picks the weakest class the chosen algorithm
// tolerates.
var (
	DetectorAC      = detector.AC
	DetectorMajAC   = detector.MajAC
	DetectorHalfAC  = detector.HalfAC
	DetectorZeroAC  = detector.ZeroAC
	DetectorOAC     = detector.OAC
	DetectorMajOAC  = detector.MajOAC
	DetectorHalfOAC = detector.HalfOAC
	DetectorZeroOAC = detector.ZeroOAC
)

// ContentionMode selects the contention manager.
type ContentionMode int

// Contention manager choices.
const (
	// ContentionAuto picks what the algorithm expects: a wake-up service
	// for Algorithms 1/2 and leader-relay, none for the tree walk.
	ContentionAuto ContentionMode = iota
	// ContentionWakeUp stabilizes to one (rotating) active process at
	// round Stable.
	ContentionWakeUp
	// ContentionLeader stabilizes to one fixed active process at Stable.
	ContentionLeader
	// ContentionBackoff runs the binary-exponential-backoff substrate; the
	// stabilization round is then probabilistic.
	ContentionBackoff
	// ContentionNone advises everyone active every round.
	ContentionNone
)

// LossMode selects the channel's loss behavior.
type LossMode int

// Channel loss models.
const (
	// LossNone delivers everything.
	LossNone LossMode = iota
	// LossProbabilistic drops each delivery independently with probability
	// P (the 20–50% regimes of the empirical studies in §1.1).
	LossProbabilistic
	// LossCapture models the capture effect: in a collision each receiver
	// locks onto at most one transmission.
	LossCapture
	// LossDrop loses every cross-process message forever (the no-ECF
	// environment of Algorithm 3).
	LossDrop
)

// Crash schedules a permanent crash failure.
type Crash struct {
	Process   ProcessID
	Round     int
	AfterSend bool // crash after broadcasting in Round rather than before
}

// Config assembles a consensus run. Zero values select sensible defaults:
// an honest detector of the weakest class the algorithm tolerates, a
// wake-up service stable from round 1 (when the algorithm uses one), a
// lossless channel with ECF from round 1, and 100k max rounds.
type Config struct {
	// Algorithm picks the protocol. Required.
	Algorithm Algorithm
	// Values holds each process's initial value; len(Values) is the number
	// of processes. Required, non-empty.
	Values []Value
	// Domain is |V|. Defaults to max(Values)+1.
	Domain uint64
	// IDs are unique identifiers for AlgorithmLeaderRelay (defaults to
	// distinct indices drawn from IDSpace).
	IDs []Value
	// IDSpace is |I| for AlgorithmLeaderRelay. Defaults to 2^48 (MAC-like).
	IDSpace uint64

	// DetectorClass overrides the detector class (zero value = auto).
	DetectorClass DetectorClass
	// DetectorRace is the first accurate round for eventually-accurate
	// classes. Defaults to 1.
	DetectorRace int
	// FalsePositiveRate makes the detector report spurious collisions with
	// this probability whenever its class allows (before DetectorRace).
	FalsePositiveRate float64

	// Contention selects the manager; Stable is its stabilization round
	// (default 1).
	Contention ContentionMode
	Stable     int

	// Loss selects the channel model; LossP parameterizes it. ECFRound is
	// the round from which a lone broadcaster is always heard (default 1;
	// set 0 to disable ECF — required honest for AlgorithmTreeWalk only).
	Loss     LossMode
	LossP    float64
	ECFRound int

	// Crashes schedules failures.
	Crashes []Crash

	// Seed drives every random component (loss, noise, backoff).
	Seed int64
	// MaxRounds bounds the run (default 100000).
	MaxRounds int
	// UseGoroutines runs the goroutine-per-process runtime instead of the
	// deterministic in-loop engine. Both produce identical executions.
	UseGoroutines bool
	// TraceDecisionsOnly skips recording per-round views: the Report's
	// Execution carries decisions but no Rounds, and the run is several
	// times faster and nearly allocation-free. Decisions, rounds, and the
	// agreed value are identical to a full-trace run. Leave false when the
	// execution itself will be inspected or validated.
	TraceDecisionsOnly bool
}

// Report is the outcome of a consensus run.
type Report struct {
	// Agreed is the decided value (valid when Decided is true).
	Agreed Value
	// Decided reports whether all correct processes decided.
	Decided bool
	// Rounds is the number of rounds executed.
	Rounds int
	// Decisions maps each decided process to its value and decision round.
	Decisions map[ProcessID]Decision
	// Execution exposes the recorded execution for inspection. Under
	// Config.TraceDecisionsOnly it has no per-round views.
	Execution *model.Execution
}

// Decision re-exports the per-process decision record.
type Decision = model.Decision

// Run executes the configured system.
func (c Config) Run() (*Report, error) {
	cfg, err := c.build()
	if err != nil {
		return nil, err
	}
	var res *engine.Result
	if c.UseGoroutines {
		res, err = runtime.Run(*cfg)
	} else {
		res, err = engine.Run(*cfg)
	}
	if err != nil {
		return nil, err
	}
	report := &Report{
		Decided:   res.AllDecided,
		Rounds:    res.Rounds,
		Decisions: res.Decisions,
		Execution: res.Execution,
	}
	if vals := res.Execution.DecidedValues(); len(vals) == 1 {
		report.Agreed = vals[0]
	} else if len(vals) > 1 {
		return nil, fmt.Errorf("adhocconsensus: agreement violated (%v) — the environment is outside the algorithm's requirements", vals)
	}
	return report, nil
}

// build translates the public configuration into an engine configuration.
func (c Config) build() (*engine.Config, error) {
	if len(c.Values) == 0 {
		return nil, fmt.Errorf("adhocconsensus: Values must be non-empty")
	}
	domainSize := c.Domain
	if domainSize == 0 {
		for _, v := range c.Values {
			if uint64(v) >= domainSize {
				domainSize = uint64(v) + 1
			}
		}
	}
	domain, err := valueset.NewDomain(domainSize)
	if err != nil {
		return nil, err
	}
	for i, v := range c.Values {
		if !domain.Contains(v) {
			return nil, fmt.Errorf("adhocconsensus: value %d of process %d outside domain of size %d", v, i+1, domainSize)
		}
	}

	procs := make(map[model.ProcessID]model.Automaton, len(c.Values))
	initial := make(map[model.ProcessID]model.Value, len(c.Values))
	switch c.Algorithm {
	case AlgorithmPropose:
		for i, v := range c.Values {
			procs[model.ProcessID(i+1)] = core.NewAlg1(v)
		}
	case AlgorithmBitByBit:
		for i, v := range c.Values {
			procs[model.ProcessID(i+1)] = core.NewAlg2(domain, v)
		}
	case AlgorithmTreeWalk:
		for i, v := range c.Values {
			procs[model.ProcessID(i+1)] = core.NewAlg3(domain, v)
		}
	case AlgorithmLeaderRelay:
		idSpaceSize := c.IDSpace
		if idSpaceSize == 0 {
			idSpaceSize = 1 << 48
		}
		idSpace, err := valueset.NewDomain(idSpaceSize)
		if err != nil {
			return nil, err
		}
		ids := c.IDs
		if len(ids) == 0 {
			ids, err = valueset.RandomIDs(len(c.Values), idSpace, c.Seed+1)
			if err != nil {
				return nil, err
			}
		}
		if len(ids) != len(c.Values) {
			return nil, fmt.Errorf("adhocconsensus: %d IDs for %d processes", len(ids), len(c.Values))
		}
		seen := make(map[Value]bool, len(ids))
		for _, id := range ids {
			if seen[id] {
				return nil, fmt.Errorf("adhocconsensus: duplicate ID %d", id)
			}
			seen[id] = true
		}
		for i, v := range c.Values {
			procs[model.ProcessID(i+1)] = core.NewNonAnon(idSpace, domain, ids[i], v)
		}
	default:
		return nil, fmt.Errorf("adhocconsensus: unknown algorithm %v", c.Algorithm)
	}
	for i, v := range c.Values {
		initial[model.ProcessID(i+1)] = v
	}

	det, err := c.buildDetector()
	if err != nil {
		return nil, err
	}
	manager, err := c.buildContention()
	if err != nil {
		return nil, err
	}
	adversary, err := c.buildLoss()
	if err != nil {
		return nil, err
	}
	crashes := make(model.Schedule, len(c.Crashes))
	for _, cr := range c.Crashes {
		when := model.CrashBeforeSend
		if cr.AfterSend {
			when = model.CrashAfterSend
		}
		crashes[cr.Process] = model.Crash{Round: cr.Round, Time: when}
	}

	trace := engine.TraceFull
	if c.TraceDecisionsOnly {
		trace = engine.TraceDecisionsOnly
	}
	return &engine.Config{
		Procs:     procs,
		Initial:   initial,
		Detector:  det,
		CM:        manager,
		Loss:      adversary,
		Crashes:   crashes,
		MaxRounds: c.MaxRounds,
		Trace:     trace,
	}, nil
}

// buildDetector resolves the detector class and behavior.
func (c Config) buildDetector() (*detector.Detector, error) {
	class := c.DetectorClass
	if class == (DetectorClass{}) {
		switch c.Algorithm {
		case AlgorithmPropose:
			class = detector.MajOAC
		case AlgorithmTreeWalk:
			class = detector.ZeroAC
		default:
			class = detector.ZeroOAC
		}
	}
	race := c.DetectorRace
	if race == 0 {
		race = 1
	}
	var behavior detector.Behavior = detector.Honest{}
	if c.FalsePositiveRate > 0 {
		behavior = detector.Noisy{P: c.FalsePositiveRate, Rng: newRng(c.Seed + 2)}
	}
	return detector.New(class, detector.WithRace(race), detector.WithBehavior(behavior)), nil
}

// buildContention resolves the contention manager.
func (c Config) buildContention() (cm.Service, error) {
	stable := c.Stable
	if stable == 0 {
		stable = 1
	}
	mode := c.Contention
	if mode == ContentionAuto {
		if c.Algorithm == AlgorithmTreeWalk {
			mode = ContentionNone
		} else {
			mode = ContentionWakeUp
		}
	}
	switch mode {
	case ContentionWakeUp:
		return cm.WakeUp{Stable: stable}, nil
	case ContentionLeader:
		return cm.NewLeaderElection(stable), nil
	case ContentionBackoff:
		return backoff.New(c.Seed + 3), nil
	case ContentionNone:
		return cm.NoCM{}, nil
	default:
		return nil, fmt.Errorf("adhocconsensus: unknown contention mode %d", mode)
	}
}

// buildLoss resolves the loss adversary and the ECF wrapper.
func (c Config) buildLoss() (loss.Adversary, error) {
	var base loss.Adversary
	switch c.Loss {
	case LossNone:
		base = loss.None{}
	case LossProbabilistic:
		base = loss.NewProbabilistic(c.LossP, c.Seed+4)
	case LossCapture:
		base = loss.NewCapture(c.LossP, c.LossP/4, c.Seed+4)
	case LossDrop:
		base = loss.Drop{}
	default:
		return nil, fmt.Errorf("adhocconsensus: unknown loss mode %d", c.Loss)
	}
	ecf := c.ECFRound
	if ecf == 0 && c.Algorithm != AlgorithmTreeWalk && c.Loss != LossDrop {
		ecf = 1
	}
	if ecf > 0 {
		return loss.ECF{Base: base, From: ecf}, nil
	}
	return base, nil
}
